// Package dataflow is the interprocedural taint engine under dpbench's
// privacy analyzers. It grows the per-function syntax checks of the sibling
// packages into a package-wide dataflow fixpoint: every function gets a
// symbolic summary (how taint flows from its parameters into its results,
// its pointer/slice parameters, struct fields, and branch conditions), and
// summaries are applied at call sites until nothing changes — so taint
// planted in a mechanism's Plan constructor is still visible when its
// Execute method reads it back out of a plan field three calls later.
//
// # The lattice
//
// An abstract value has one of three kinds:
//
//   - Pub: public — constants, domain shape, workload structure, and
//     anything already released through a metered draw;
//   - Draw: a fresh accountant-metered noise draw (or a pure scaling of
//     one). Draw is the sanitizer: combining a Priv value with a Draw
//     yields Pub, which is exactly "crossed an accountant-metered draw";
//   - Priv: derived from the private histogram with no metered noise
//     crossed.
//
// Combining (arithmetic, or a call the engine cannot see into) follows the
// differential-privacy reading: Priv ⊕ Draw = Pub (the Laplace mechanism),
// but Priv ⊕ Pub = Priv (adding an already-released value to a raw count
// releases nothing), and a released value never re-sanitizes: (c1 + draw) is
// Pub, so c2 + (c1 + draw) stays Priv.
//
// # Summaries and the fixpoint
//
// A value may, instead of a concrete kind, depend symbolically on the
// enclosing function's parameters (a bitset). Summaries record, per
// function: the result value, what is written through each pointer/slice
// parameter, which package-local struct fields are written (symbolically,
// so a helper that stores its argument into a plan field taints the field
// with whatever each call site passes), which parameters feed branch
// conditions, and which parameters reach error-construction or
// response-writer sinks. Field taint is a package-global map keyed by
// (named type, field); it is how taint crosses the Plan/Execute split
// without any call edge between the two methods.
//
// The engine is deliberately flow-insensitive: assignments join. The one
// strong update is sanitization — a local buffer passed as the destination
// of a metered draw (or into any callee that receives the noise meter) is
// treated as released from then on, which is what makes the in-place
// "compute counts, noise them, infer" idiom of the tree mechanisms check
// cleanly. The model hooks (Model interface) supply the domain knowledge:
// what is a source, what a meter method does, what sinks look like.
//
// # Annotations
//
// A line comment `//dp:public <justification>` on a statement (or the line
// above it) forces the values it assigns to Pub; on a struct field
// declaration it pins the field Pub permanently; on a function declaration
// it pins the function's results Pub. It is the audited escape hatch for
// the paper's declared public side information (the dataset scale used by
// MWEM/SF/UGrid/AGrid, Principle 7) and must carry a justification.
package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"dpbench/internal/analysis"
)

// Kind is one point of the taint lattice.
type Kind uint8

const (
	// Pub marks public values: constants, structure, released output.
	Pub Kind = iota
	// Draw marks a fresh accountant-metered noise draw.
	Draw
	// Priv marks values derived from the private input without crossing a
	// metered draw.
	Priv
)

// String renders the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case Draw:
		return "draw"
	case Priv:
		return "private"
	default:
		return "public"
	}
}

// Val is one abstract value: a concrete kind joined with a symbolic
// dependency on the enclosing function's parameters (receiver is bit 0 for
// methods, then parameters in declaration order).
type Val struct {
	K    Kind
	Deps uint64
}

// Join is the lattice join: worst kind, union of dependencies.
func Join(a, b Val) Val {
	if b.K > a.K {
		a.K = b.K
	}
	a.Deps |= b.Deps
	return a
}

// pureDraw reports whether v is a fresh draw with no parameter dependence.
func pureDraw(v Val) bool { return v.K == Draw && v.Deps == 0 }

// Combine models arithmetic combination. Combining with a pure draw
// sanitizes: the result of priv+draw is a released (Pub) value; pub*draw
// stays a draw (scaled noise still sanitizes); everything else joins.
func Combine(a, b Val) Val {
	if pureDraw(a) {
		a, b = b, a
	}
	if pureDraw(b) {
		if a.K == Pub && a.Deps == 0 {
			return Val{K: Draw}
		}
		if a.K == Draw {
			return Val{K: Draw}
		}
		// Priv or symbolic: crossing the draw releases it.
		return Val{K: Pub}
	}
	return Join(a, b)
}

// CombineAll folds Combine over vals (Pub for an empty list).
func CombineAll(vals []Val) Val {
	var out Val
	for i, v := range vals {
		if i == 0 {
			out = v
			continue
		}
		out = Combine(out, v)
	}
	return out
}

// FieldKey names one field of a package-local named struct type.
type FieldKey struct {
	Type  *types.TypeName
	Field string
}

// Effect describes what a call the engine cannot see into does with its
// abstract arguments. Argument indices include the receiver at 0 for
// method calls, shifting the ordinary arguments up by one.
type Effect struct {
	// Result is the call's result value (already resolved against args).
	Result Val
	// ArgWrites gives the value written through an argument.
	ArgWrites map[int]Val
	// Sanitize strong-cleanses the local variable passed at an index to
	// the given kind: from then on the buffer counts as released (Pub) or
	// as fresh noise (Draw), whatever later joins said.
	Sanitize map[int]Kind
	// ErrSinkArgs lists arguments formatted into an error value.
	ErrSinkArgs []int
	// RespSinkArgs lists arguments written to a client-visible response.
	RespSinkArgs []int
	// LedgerSinkArgs lists arguments committed to the durable budget
	// ledger (WAL frames, Merkle leaves, proof responses).
	LedgerSinkArgs []int
}

// Model supplies the analyzer-specific domain knowledge.
type Model interface {
	// Intrinsic gives an expression's a-priori value — taint sources
	// (e.g. the private histogram type) and known-public accessors —
	// or ok=false to evaluate structurally.
	Intrinsic(info *types.Info, e ast.Expr) (Val, bool)
	// Call describes a call with no analyzable body (cross-package,
	// interface, builtin the engine does not special-case). args holds
	// the abstract receiver (for methods) followed by the arguments.
	// ok=false applies the default rule: combine every argument, write
	// the combination through each mutable argument.
	Call(info *types.Info, call *ast.CallExpr, args []Val) (Effect, bool)
}

// Summary is one function's interprocedural abstraction.
type Summary struct {
	// Result is the join of every returned value (symbolic).
	Result Val
	// Writes maps a parameter index to the value written through it.
	Writes map[int]Val
	// FieldWrites records symbolic writes into package-local fields;
	// concrete parts are raised directly on Engine.fields.
	FieldWrites map[FieldKey]Val
	// Sanitizes marks parameters strong-cleansed inside (passed as a
	// metered-draw destination), with the resulting kind.
	Sanitizes map[int]Kind
	// Branch is the set of parameters feeding branch conditions.
	Branch uint64
	// ErrSink is the set of parameters reaching an error-construction
	// sink; RespSink the set reaching a response-writer sink; LedgerSink
	// the set committed to the durable budget ledger.
	ErrSink    uint64
	RespSink   uint64
	LedgerSink uint64
}

// Func is one analyzed function declaration.
type Func struct {
	Decl *ast.FuncDecl
	Obj  *types.Func
	// params maps the declared parameter objects (receiver first) to
	// their indices.
	params map[types.Object]int
	nparam int
	// vars is the flow-insensitive abstract store for locals.
	vars map[types.Object]Val
	// sanitized strong-cleanses locals that crossed a metered draw.
	sanitized map[types.Object]Kind
	// sum is the function's current summary.
	sum Summary
	// closureVars maps a local bound to a func literal (sse := func...)
	// to that literal, so calls through the variable can use its result.
	closureVars map[types.Object]*ast.FuncLit
	// closureResult is the joined return value of each nested literal.
	closureResult map[*ast.FuncLit]Val
	// closureDepth > 0 while walking a nested literal's body: returns then
	// belong to the literal, not the enclosing function.
	closureDepth int
	// curClosure is the literal whose body is being walked.
	curClosure *ast.FuncLit
}

// Name returns the function's name for diagnostics.
func (f *Func) Name() string { return f.Obj.Name() }

// Engine runs the package-wide fixpoint.
type Engine struct {
	pass    *analysis.Pass
	model   Model
	funcs   []*Func
	byObj   map[*types.Func]*Func
	fields  map[FieldKey]Kind
	lockPub map[FieldKey]bool // //dp:public fields: pinned Pub
	globals map[types.Object]Kind
	pubLine map[string]map[int]bool // file -> lines carrying //dp:public
	pubFunc map[*types.Func]bool    // //dp:public functions: results pinned Pub
	changed bool
}

// New indexes the package and collects annotations; Run computes the
// fixpoint.
func New(pass *analysis.Pass, model Model) *Engine {
	e := &Engine{
		pass:    pass,
		model:   model,
		byObj:   map[*types.Func]*Func{},
		fields:  map[FieldKey]Kind{},
		lockPub: map[FieldKey]bool{},
		globals: map[types.Object]Kind{},
		pubLine: map[string]map[int]bool{},
		pubFunc: map[*types.Func]bool{},
	}
	e.collectAnnotations()
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			f := &Func{
				Decl:          fd,
				Obj:           obj,
				params:        map[types.Object]int{},
				vars:          map[types.Object]Val{},
				sanitized:     map[types.Object]Kind{},
				closureVars:   map[types.Object]*ast.FuncLit{},
				closureResult: map[*ast.FuncLit]Val{},
				sum: Summary{
					Writes:      map[int]Val{},
					FieldWrites: map[FieldKey]Val{},
					Sanitizes:   map[int]Kind{},
				},
			}
			idx := 0
			if fd.Recv != nil {
				for _, field := range fd.Recv.List {
					for _, name := range field.Names {
						f.params[pass.TypesInfo.Defs[name]] = idx
					}
					idx++
				}
				if idx == 0 {
					idx = 1 // unnamed receiver still occupies slot 0
				}
			}
			if fd.Type.Params != nil {
				for _, field := range fd.Type.Params.List {
					if len(field.Names) == 0 {
						idx++
						continue
					}
					for _, name := range field.Names {
						f.params[pass.TypesInfo.Defs[name]] = idx
						idx++
					}
				}
			}
			f.nparam = idx
			if e.pubAt(fd.Pos()) {
				e.pubFunc[obj] = true
			}
			e.funcs = append(e.funcs, f)
			e.byObj[obj] = f
		}
	}
	return e
}

// collectAnnotations gathers //dp:public lines and pinned-public struct
// fields.
func (e *Engine) collectAnnotations() {
	for _, file := range e.pass.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "dp:public") {
					continue
				}
				pos := e.pass.Fset.Position(c.Pos())
				if e.pubLine[pos.Filename] == nil {
					e.pubLine[pos.Filename] = map[int]bool{}
				}
				e.pubLine[pos.Filename][pos.Line] = true
			}
		}
	}
	// Pin annotated struct fields.
	for _, file := range e.pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			tn, ok := e.pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !e.pubAt(field.Pos()) {
					continue
				}
				for _, name := range field.Names {
					e.lockPub[FieldKey{tn, name.Name}] = true
				}
			}
			return true
		})
	}
}

// pubAt reports whether pos's line (or the line above) carries //dp:public.
func (e *Engine) pubAt(pos token.Pos) bool {
	p := e.pass.Fset.Position(pos)
	lines := e.pubLine[p.Filename]
	return lines[p.Line] || lines[p.Line-1]
}

// Run iterates the whole package to a fixpoint. Sanitization makes the
// system non-monotone in principle, so iteration is capped; the cap is far
// above what any real package needs to converge.
func (e *Engine) Run() {
	for iter := 0; iter < 32; iter++ {
		e.changed = false
		for _, f := range e.funcs {
			e.analyzeFunc(f)
		}
		if !e.changed {
			return
		}
	}
}

// Funcs returns the analyzed functions in declaration order.
func (e *Engine) Funcs() []*Func { return e.funcs }

// FuncOf resolves a function object to its analyzed declaration.
func (e *Engine) FuncOf(obj *types.Func) (*Func, bool) {
	f, ok := e.byObj[obj]
	return f, ok
}

// Summary returns fn's current summary.
func (e *Engine) Summary(f *Func) Summary { return f.sum }

// FieldKind returns the package-global taint of a struct field.
func (e *Engine) FieldKind(key FieldKey) Kind {
	if e.lockPub[key] {
		return Pub
	}
	return e.fields[key]
}

// raiseField joins k into the global field taint.
func (e *Engine) raiseField(key FieldKey, k Kind) {
	if e.lockPub[key] || k <= e.fields[key] {
		return
	}
	e.fields[key] = k
	e.changed = true
}

// raiseGlobal joins k into a package-level variable's taint.
func (e *Engine) raiseGlobal(obj types.Object, k Kind) {
	if k <= e.globals[obj] {
		return
	}
	e.globals[obj] = k
	e.changed = true
}

// analyzeFunc re-evaluates one function body until its local store is
// stable, updating its summary and the global field/global taints.
func (e *Engine) analyzeFunc(f *Func) {
	for i := 0; i < 8; i++ {
		before := e.changed
		e.changed = false
		e.walkStmt(f, f.Decl.Body)
		stable := !e.changed
		e.changed = e.changed || before
		if stable {
			return
		}
	}
}

// setVar joins v into a local's abstract value.
func (e *Engine) setVar(f *Func, obj types.Object, v Val) {
	if obj == nil {
		return
	}
	if _, isParam := f.params[obj]; isParam {
		return // parameters stay symbolic
	}
	old, ok := f.vars[obj]
	nv := Join(old, v)
	if !ok || nv != old {
		f.vars[obj] = nv
		e.changed = true
	}
}

// sanitizeVar strong-cleanses a local.
func (e *Engine) sanitizeVar(f *Func, obj types.Object, k Kind) {
	if obj == nil {
		return
	}
	if idx, isParam := f.params[obj]; isParam {
		if old, ok := f.sum.Sanitizes[idx]; !ok || k < old {
			f.sum.Sanitizes[idx] = k
			e.changed = true
		}
		return
	}
	if old, ok := f.sanitized[obj]; !ok || k < old {
		f.sanitized[obj] = k
		e.changed = true
	}
}

// raiseSummary* helpers join into the summary, tracking change.

func (e *Engine) raiseResult(f *Func, v Val) {
	if f.closureDepth > 0 {
		lit := f.curClosure
		nv := Join(f.closureResult[lit], v)
		if nv != f.closureResult[lit] {
			f.closureResult[lit] = nv
			e.changed = true
		}
		return
	}
	nv := Join(f.sum.Result, v)
	if e.pubFunc[f.Obj] {
		nv = Val{}
	}
	if nv != f.sum.Result {
		f.sum.Result = nv
		e.changed = true
	}
}

func (e *Engine) raiseWrite(f *Func, idx int, v Val) {
	old := f.sum.Writes[idx]
	nv := Join(old, v)
	if nv != old {
		f.sum.Writes[idx] = nv
		e.changed = true
	}
}

func (e *Engine) raiseBits(dst *uint64, bits uint64) {
	if *dst|bits != *dst {
		*dst |= bits
		e.changed = true
	}
}

// Eval returns the final abstract value of an expression in f's context.
// It is side-effect-free with respect to the fixpoint only after Run has
// converged, which is when the report phase calls it.
func (e *Engine) Eval(f *Func, expr ast.Expr) Val { return e.eval(f, expr) }

// eval computes an expression's abstract value, applying call effects as a
// side effect (the fixpoint re-runs until those stabilize).
func (e *Engine) eval(f *Func, expr ast.Expr) Val {
	if expr == nil {
		return Val{}
	}
	if v, ok := e.model.Intrinsic(e.pass.TypesInfo, expr); ok {
		return v
	}
	switch x := expr.(type) {
	case *ast.Ident:
		return e.evalIdent(f, x)
	case *ast.ParenExpr:
		return e.eval(f, x.X)
	case *ast.SelectorExpr:
		return e.evalSelector(f, x)
	case *ast.IndexExpr:
		return Join(e.eval(f, x.X), e.eval(f, x.Index))
	case *ast.SliceExpr:
		return e.eval(f, x.X)
	case *ast.StarExpr:
		return e.eval(f, x.X)
	case *ast.UnaryExpr:
		return e.eval(f, x.X)
	case *ast.BinaryExpr:
		if isNilComparison(e.pass.TypesInfo, x) {
			// x == nil / x != nil reveals presence, not contents: the
			// Plan/Execute split sets optional fields by configuration
			// (Pside precompute vs Rside fallback), so nil-ness is
			// structural even when the pointee is private.
			return Val{}
		}
		return Combine(e.eval(f, x.X), e.eval(f, x.Y))
	case *ast.CallExpr:
		return e.evalCall(f, x)
	case *ast.CompositeLit:
		return e.evalComposite(f, x)
	case *ast.TypeAssertExpr:
		return e.eval(f, x.X)
	case *ast.FuncLit:
		// The closure body shares the enclosing store; its own parameters
		// are unknown inputs, treated Pub. Returns join into the literal's
		// own result slot (read by calls through a bound variable), never
		// into the enclosing function's summary.
		prevLit, prevDepth := f.curClosure, f.closureDepth
		f.curClosure, f.closureDepth = x, prevDepth+1
		e.walkStmt(f, x.Body)
		f.curClosure, f.closureDepth = prevLit, prevDepth
		return Val{}
	case *ast.KeyValueExpr:
		return e.eval(f, x.Value)
	default:
		return Val{}
	}
}

// evalIdent resolves an identifier: parameter (symbolic), sanitized or
// joined local, package-level variable, or constant.
func (e *Engine) evalIdent(f *Func, id *ast.Ident) Val {
	obj := e.pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = e.pass.TypesInfo.Defs[id]
	}
	if obj == nil {
		return Val{}
	}
	if idx, ok := f.params[obj]; ok {
		if k, sanitized := f.sum.Sanitizes[idx]; sanitized {
			return Val{K: k}
		}
		return Val{Deps: 1 << uint(idx)}
	}
	if k, ok := f.sanitized[obj]; ok {
		return Val{K: k}
	}
	if v, ok := f.vars[obj]; ok {
		return v
	}
	if v, isVar := obj.(*types.Var); isVar && v.Pkg() == e.pass.Pkg && e.isPackageLevel(obj) {
		return Val{K: e.globals[obj]}
	}
	return Val{}
}

// isNilComparison reports whether b compares against the nil literal.
func isNilComparison(info *types.Info, b *ast.BinaryExpr) bool {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return false
	}
	for _, side := range []ast.Expr{b.X, b.Y} {
		if tv, ok := info.Types[side]; ok && tv.IsNil() {
			return true
		}
	}
	return false
}

// isPackageLevel reports whether obj is declared at package scope.
func (e *Engine) isPackageLevel(obj types.Object) bool {
	return obj.Parent() == e.pass.Pkg.Scope()
}

// evalSelector resolves e.X.Sel: package-local struct fields use the global
// field taint; cross-package fields propagate the base value.
func (e *Engine) evalSelector(f *Func, sel *ast.SelectorExpr) Val {
	if obj := e.pass.TypesInfo.Uses[sel.Sel]; obj != nil {
		if v, isVar := obj.(*types.Var); isVar && v.IsField() {
			if key, ok := e.fieldKeyOf(sel); ok {
				return Val{K: e.FieldKind(key)}
			}
			return e.eval(f, sel.X)
		}
		if _, isFn := obj.(*types.Func); isFn {
			return Val{} // method value
		}
		if _, isPkgIdent := sel.X.(*ast.Ident); isPkgIdent {
			if _, isVar := obj.(*types.Var); isVar && obj.Pkg() == e.pass.Pkg {
				return Val{K: e.globals[obj]}
			}
		}
	}
	return e.eval(f, sel.X)
}

// fieldKeyOf resolves a selector to a package-local (type, field) key.
func (e *Engine) fieldKeyOf(sel *ast.SelectorExpr) (FieldKey, bool) {
	obj, ok := e.pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok || !obj.IsField() {
		return FieldKey{}, false
	}
	t := e.pass.TypesInfo.Types[sel.X].Type
	if t == nil {
		return FieldKey{}, false
	}
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return FieldKey{}, false
	}
	tn := named.Obj()
	if tn.Pkg() != e.pass.Pkg {
		return FieldKey{}, false
	}
	return FieldKey{tn, obj.Name()}, true
}

// evalComposite evaluates a composite literal, raising field taint for
// package-local struct literals, and returns the join of the elements.
func (e *Engine) evalComposite(f *Func, cl *ast.CompositeLit) Val {
	var out Val
	tn := e.localStructName(cl)
	var fieldsInOrder []*types.Var
	if tn != nil {
		if st, ok := tn.Type().Underlying().(*types.Struct); ok {
			for i := 0; i < st.NumFields(); i++ {
				fieldsInOrder = append(fieldsInOrder, st.Field(i))
			}
		}
	}
	for i, elt := range cl.Elts {
		var v Val
		var fieldName string
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			v = e.eval(f, kv.Value)
			if id, ok := kv.Key.(*ast.Ident); ok {
				fieldName = id.Name
			}
			if e.pubAt(kv.Pos()) {
				v = Val{}
			}
		} else {
			v = e.eval(f, elt)
			if tn != nil && i < len(fieldsInOrder) {
				fieldName = fieldsInOrder[i].Name()
			}
		}
		if tn != nil && fieldName != "" {
			e.writeField(f, FieldKey{tn, fieldName}, v)
			continue
		}
		out = Join(out, v)
	}
	// A struct literal's own value carries its field taints at this site.
	if tn != nil {
		for i, elt := range cl.Elts {
			var v Val
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if e.pubAt(kv.Pos()) {
					continue
				}
				v = e.eval(f, kv.Value)
			} else {
				if i < len(fieldsInOrder) && e.lockPub[FieldKey{tn, fieldsInOrder[i].Name()}] {
					continue
				}
				v = e.eval(f, elt)
			}
			// Pinned-public fields do not taint the literal either.
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if id, isID := kv.Key.(*ast.Ident); isID && e.lockPub[FieldKey{tn, id.Name}] {
					continue
				}
			}
			out = Join(out, v)
		}
	}
	return out
}

// localStructName resolves a composite literal's type to a package-local
// named struct.
func (e *Engine) localStructName(cl *ast.CompositeLit) *types.TypeName {
	t := e.pass.TypesInfo.Types[cl].Type
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() != e.pass.Pkg {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named.Obj()
}

// writeField records a write into a package-local field: the concrete part
// raises the global field taint; the symbolic part joins the summary's
// field writes for call-site resolution.
func (e *Engine) writeField(f *Func, key FieldKey, v Val) {
	if e.lockPub[key] {
		return
	}
	e.raiseField(key, v.K)
	if v.Deps != 0 {
		old := f.sum.FieldWrites[key]
		nv := Join(old, v)
		if nv != old {
			f.sum.FieldWrites[key] = nv
			e.changed = true
		}
	}
}
