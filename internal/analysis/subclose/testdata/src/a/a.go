// Fixture for the subclose analyzer. Sub-meters opened here must be closed
// on every path; escapes are deliberately out of scope.
package algo

import "dpbench/internal/noise"

func leakNever(m *noise.Meter) {
	sub := m.SubEps("s1", 0.5) // want `sub-meter "s1" is not closed on every path`
	sub.Laplace("x", 1, 0.5)
}

// Closed on one branch only: the classic partial close.
func leakOneBranch(m *noise.Meter, cond bool) {
	sub := m.SubEps("s2", 0.5) // want `sub-meter "s2" is not closed on every path`
	sub.Laplace("x", 1, 0.5)
	if cond {
		sub.Close()
	}
}

func leakEarlyReturn(m *noise.Meter, err error) error {
	sub := m.SubEps("s3", 0.5) // want `sub-meter "s3" is not closed on every path`
	if err != nil {
		return err
	}
	sub.Close()
	return nil
}

func leakLoopReopen(m *noise.Meter) {
	var sub noise.Meter
	for i := 0; i < 3; i++ {
		m.ResetSub(&sub, "bucket", 0.1, true) // want `sub-meter "bucket" is not closed on every path`
		sub.LaplacePar("x", 1, 0.1)
	}
}

func cleanDefer(m *noise.Meter) {
	sub := m.Sub("s4", 0.5)
	defer sub.Close()
	sub.Laplace("x", 1, 0.25)
}

func cleanDeferClosure(m *noise.Meter) {
	sub := m.SubParEps("s5", 0.5)
	defer func() {
		sub.Close()
	}()
	sub.LaplacePar("x", 1, 0.25)
}

func cleanBothBranches(m *noise.Meter, cond bool) {
	sub := m.SubEps("s6", 0.5)
	if cond {
		sub.Laplace("x", 1, 0.5)
		sub.Close()
	} else {
		sub.Close()
	}
}

func cleanErrPath(m *noise.Meter, err error) error {
	sub := m.SubEps("s7", 0.5)
	if err != nil {
		sub.Close()
		return err
	}
	sub.Laplace("x", 1, 0.5)
	sub.Close()
	return nil
}

// The SF pattern: re-armed storage opened and closed within each iteration.
func cleanLoop(m *noise.Meter) {
	var sub noise.Meter
	for i := 0; i < 3; i++ {
		m.ResetSub(&sub, "bucket", 0.1, true)
		sub.LaplacePar("x", 1, 0.1)
		sub.Close()
	}
}

// Passing the sub-meter on moves the close responsibility out of static
// reach: no finding, the runtime audit owns this case.
func cleanEscape(m *noise.Meter) *noise.Meter {
	sub := m.SubEps("s8", 0.5)
	return sub
}

func spendInto(sub *noise.Meter) { sub.Laplace("x", 1, 0.5) }

func cleanEscapeArg(m *noise.Meter) {
	sub := m.SubEps("s9", 0.5)
	spendInto(sub)
}

func allowedLeak(m *noise.Meter) {
	//lint:allow subclose fixture: the parent is audited by the caller
	sub := m.SubEps("s10", 0.5)
	sub.Laplace("x", 1, 0.5)
}

// Storing the sub-meter in a field moves the close obligation to the
// holder's lifecycle: escape, no finding.
type meterHolder struct{ sub *noise.Meter }

func cleanEscapeField(m *noise.Meter, h *meterHolder) {
	sub := m.SubEps("s11", 0.5)
	h.sub = sub
	sub.Laplace("x", 1, 0.5)
}

// A package-level store likewise escapes static reach.
var retainedSub *noise.Meter

func cleanEscapeGlobal(m *noise.Meter) {
	sub := m.SubEps("s12", 0.5)
	retainedSub = sub
}

// An escape on any path frees the whole site — the branch that closes
// locally does not bring the other branch back in scope.
func cleanEscapeBranch(m *noise.Meter, cond bool) {
	sub := m.SubEps("s13", 0.5)
	if cond {
		retainedSub = sub
		return
	}
	sub.Close()
}
