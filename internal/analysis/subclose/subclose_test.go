package subclose

import (
	"path/filepath"
	"testing"

	"dpbench/internal/analysis/analysistest"
)

func TestSubclose(t *testing.T) {
	t.Parallel()
	analysistest.Run(t, Analyzer, filepath.Join("testdata", "src", "a"), "dpbench/internal/algo")
}
