package subclose

import (
	"path/filepath"
	"testing"

	"dpbench/internal/analysis/analysistest"
)

func TestSubclose(t *testing.T) {
	analysistest.Run(t, Analyzer, filepath.Join("testdata", "src", "a"), "dpbench/internal/algo")
}
