// Package subclose enforces the scoped-sub-meter invariant: a meter opened
// with Sub / SubEps / SubParEps (or re-armed in place with ResetSub) must be
// closed back into its parent on every control-flow path. Close is where
// the child's actual spend is charged to the parent ledger, so a leaked
// sub-meter silently under-reports the trial's spend — the audit then fails
// (if it runs) or the budget arithmetic is simply wrong (if it doesn't).
//
// The check is lostcancel-shaped but runs on structured syntax rather than
// a CFG: from the opening statement it walks the remainder of each
// enclosing block, requiring that every path reaches a Close (a direct
// call, a defer, or a deferred closure containing one) before a return,
// a loop-back edge, or the end of the function. Sub-meters that escape the
// function — passed to another call, stored, returned — are skipped: the
// responsibility moved, and tracking it interprocedurally is the runtime
// audit's job.
package subclose

import (
	"go/ast"
	"go/types"

	"dpbench/internal/analysis"
	"dpbench/internal/analysis/meterapi"
)

// Analyzer is the subclose pass.
var Analyzer = &analysis.Analyzer{
	Name: "subclose",
	Doc:  "a Sub/SubEps/SubParEps sub-meter must be closed back into its parent on every path",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg == nil {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil
}

// an openSite is one statement that opens (or re-arms) a sub-meter bound to
// a trackable expression.
type openSite struct {
	stmt  ast.Stmt // the statement containing the open call
	expr  string   // canonical rendering of the sub-meter expression
	obj   types.Object
	label string // the ledger label, when constant
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	var sites []openSite
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := meterapi.MeterMethod(pass.TypesInfo, call)
			if !ok || !meterapi.SubMethods[name] {
				return true
			}
			ident, ok := n.Lhs[0].(*ast.Ident)
			if !ok || ident.Name == "_" {
				return true
			}
			label, _ := meterapi.ConstString(pass.TypesInfo, call.Args[0])
			sites = append(sites, openSite{
				stmt:  n,
				expr:  types.ExprString(n.Lhs[0]),
				obj:   objectOf(pass.TypesInfo, ident),
				label: label,
			})
		case *ast.ExprStmt:
			call, ok := n.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := meterapi.MeterMethod(pass.TypesInfo, call)
			if !ok || name != "ResetSub" || len(call.Args) < 2 {
				return true
			}
			unary, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok {
				return true
			}
			target := ast.Unparen(unary.X)
			label, _ := meterapi.ConstString(pass.TypesInfo, call.Args[1])
			sites = append(sites, openSite{
				stmt:  n,
				expr:  types.ExprString(target),
				obj:   rootObject(pass.TypesInfo, target),
				label: label,
			})
		}
		return true
	})
	for _, site := range sites {
		checkSite(pass, fd, site)
	}
}

// objectOf resolves an identifier to its object via Uses or Defs.
func objectOf(info *types.Info, ident *ast.Ident) types.Object {
	if o := info.Uses[ident]; o != nil {
		return o
	}
	return info.Defs[ident]
}

// rootObject resolves the leftmost identifier of an expression like
// sc.sub to its object, for occurrence matching.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return objectOf(info, x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

type status int

const (
	// sFall: control falls off the end of the sequence with the sub still
	// open — keep looking in the enclosing block.
	sFall status = iota
	// sClosed: every path through the sequence closes the sub.
	sClosed
	// sLeak: some path returns or loops back with the sub open.
	sLeak
	// sUnknown: control flow too irregular (goto); stay silent.
	sUnknown
)

func checkSite(pass *analysis.Pass, fd *ast.FuncDecl, site openSite) {
	if escapes(pass, fd, site) {
		return
	}
	chain, ok := enclosingChain(fd.Body, site.stmt)
	if !ok {
		return
	}
	w := &walker{pass: pass, site: site}
	// Walk the remainder of each enclosing block, innermost first.
	for i := len(chain) - 1; i >= 0; i-- {
		level := chain[i]
		switch w.seq(level.rest) {
		case sClosed:
			return
		case sUnknown:
			return
		case sLeak:
			report(pass, site)
			return
		case sFall:
			if level.loop {
				// Falling to the next iteration re-opens (or abandons) the
				// still-open child: a leak on every iteration.
				report(pass, site)
				return
			}
		}
	}
	// Fell off the end of the function with the sub open.
	report(pass, site)
}

func report(pass *analysis.Pass, site openSite) {
	name := "sub-meter"
	if site.label != "" {
		name = "sub-meter \"" + site.label + "\""
	}
	pass.Reportf(site.stmt.Pos(), "%s is not closed on every path: Close charges the child's spend to the parent ledger, so a leaked sub-meter under-reports the trial's spend", name)
}

// level is one enclosing block: the statements after the open site (or
// after the nested block containing it), and whether leaving the block
// falls back to a loop header.
type level struct {
	rest []ast.Stmt
	loop bool
}

// enclosingChain returns the blocks from the function body down to the one
// holding stmt, each trimmed to the statements after the relevant position.
func enclosingChain(body *ast.BlockStmt, stmt ast.Stmt) ([]level, bool) {
	var chain []level
	var find func(stmts []ast.Stmt, loop bool) bool
	find = func(stmts []ast.Stmt, loop bool) bool {
		for i, s := range stmts {
			if s == stmt {
				chain = append(chain, level{rest: stmts[i+1:], loop: loop})
				return true
			}
			if containsStmt(s, stmt) {
				chain = append(chain, level{rest: stmts[i+1:], loop: loop})
				return descend(s, stmt, find)
			}
		}
		return false
	}
	if !find(body.List, false) {
		return nil, false
	}
	// chain was built outermost-first.
	return chain, true
}

// containsStmt reports whether outer contains target.
func containsStmt(outer ast.Node, target ast.Stmt) bool {
	found := false
	ast.Inspect(outer, func(n ast.Node) bool {
		if n == ast.Node(target) {
			found = true
		}
		return !found
	})
	return found
}

// descend recurses into the compound statement s toward target.
func descend(s ast.Stmt, target ast.Stmt, find func([]ast.Stmt, bool) bool) bool {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return find(s.List, false)
	case *ast.IfStmt:
		if containsStmt(s.Body, target) {
			return find(s.Body.List, false)
		}
		if s.Else != nil && containsStmt(s.Else, target) {
			if blk, ok := s.Else.(*ast.BlockStmt); ok {
				return find(blk.List, false)
			}
			return descend(s.Else, target, find)
		}
	case *ast.ForStmt:
		return find(s.Body.List, true)
	case *ast.RangeStmt:
		return find(s.Body.List, true)
	case *ast.SwitchStmt:
		return descendClauses(s.Body, target, find)
	case *ast.TypeSwitchStmt:
		return descendClauses(s.Body, target, find)
	case *ast.SelectStmt:
		return descendClauses(s.Body, target, find)
	case *ast.LabeledStmt:
		return descend(s.Stmt, target, find)
	}
	return false
}

func descendClauses(body *ast.BlockStmt, target ast.Stmt, find func([]ast.Stmt, bool) bool) bool {
	for _, clause := range body.List {
		switch c := clause.(type) {
		case *ast.CaseClause:
			if stmtListContains(c.Body, target) {
				return find(c.Body, false)
			}
		case *ast.CommClause:
			if stmtListContains(c.Body, target) {
				return find(c.Body, false)
			}
		}
	}
	return false
}

func stmtListContains(stmts []ast.Stmt, target ast.Stmt) bool {
	for _, s := range stmts {
		if s == target || containsStmt(s, target) {
			return true
		}
	}
	return false
}

// walker evaluates close-on-every-path over structured statements.
type walker struct {
	pass *analysis.Pass
	site openSite
}

func (w *walker) seq(stmts []ast.Stmt) status {
	for _, s := range stmts {
		switch st := w.stmt(s); st {
		case sClosed, sLeak, sUnknown:
			return st
		}
	}
	return sFall
}

func (w *walker) stmt(s ast.Stmt) status {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if w.isClose(s.X) {
			return sClosed
		}
	case *ast.DeferStmt:
		if w.isCloseCall(s.Call) {
			return sClosed
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok && w.containsClose(lit.Body) {
			return sClosed
		}
	case *ast.ReturnStmt:
		return sLeak
	case *ast.BranchStmt:
		// break/continue jump out with the sub open; goto is irregular
		// enough that we stay silent rather than guess.
		if s.Tok.String() == "goto" {
			return sUnknown
		}
		return sLeak
	case *ast.BlockStmt:
		return w.seq(s.List)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt)
	case *ast.IfStmt:
		thenSt := w.seq(s.Body.List)
		elseSt := sFall
		if s.Else != nil {
			elseSt = w.stmt(s.Else)
		}
		return combineBranches(thenSt, elseSt)
	case *ast.SwitchStmt:
		return w.clauses(s.Body, hasDefault(s.Body))
	case *ast.TypeSwitchStmt:
		return w.clauses(s.Body, hasDefault(s.Body))
	case *ast.SelectStmt:
		return w.clauses(s.Body, true)
	case *ast.ForStmt:
		return w.loopBody(s.Body)
	case *ast.RangeStmt:
		return w.loopBody(s.Body)
	}
	return sFall
}

// loopBody: a close inside a loop that starts after the open does not
// guarantee anything (zero iterations), but a leak inside it is real.
func (w *walker) loopBody(body *ast.BlockStmt) status {
	switch w.seq(body.List) {
	case sLeak:
		return sLeak
	case sUnknown:
		return sUnknown
	}
	return sFall
}

func (w *walker) clauses(body *ast.BlockStmt, exhaustive bool) status {
	st := sClosed
	for _, clause := range body.List {
		var inner []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			inner = c.Body
		case *ast.CommClause:
			inner = c.Body
		}
		st = combineBranches(st, w.seq(inner))
	}
	if !exhaustive {
		st = combineBranches(st, sFall)
	}
	return st
}

func hasDefault(body *ast.BlockStmt) bool {
	for _, clause := range body.List {
		if c, ok := clause.(*ast.CaseClause); ok && c.List == nil {
			return true
		}
	}
	return false
}

// combineBranches merges the statuses of two alternative paths.
func combineBranches(a, b status) status {
	switch {
	case a == sUnknown || b == sUnknown:
		return sUnknown
	case a == sLeak || b == sLeak:
		return sLeak
	case a == sClosed && b == sClosed:
		return sClosed
	default:
		return sFall
	}
}

// isClose reports whether e is <site.expr>.Close().
func (w *walker) isClose(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	return w.isCloseCall(call)
}

func (w *walker) isCloseCall(call *ast.CallExpr) bool {
	name, ok := meterapi.MeterMethod(w.pass.TypesInfo, call)
	if !ok || name != "Close" {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return types.ExprString(ast.Unparen(sel.X)) == w.site.expr
}

func (w *walker) containsClose(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && w.isCloseCall(call) {
			found = true
		}
		return !found
	})
	return found
}

// escapes reports whether the sub-meter expression is used anywhere in the
// function other than as a method receiver, the open statement itself, or
// another ResetSub re-arm of the same storage — passing it (or its address)
// onward moves the close responsibility out of static reach.
func escapes(pass *analysis.Pass, fd *ast.FuncDecl, site openSite) bool {
	if site.obj == nil {
		return true
	}
	esc := false
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		e, ok := n.(ast.Expr)
		if !ok || !w2Matches(pass, e, site) {
			return true
		}
		if !occurrenceAllowed(pass, stack, site) {
			esc = true
		}
		// Do not descend into the matched expression.
		return false
	})
	return esc
}

// w2Matches reports whether e denotes the tracked sub-meter storage.
func w2Matches(pass *analysis.Pass, e ast.Expr, site openSite) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return types.ExprString(e) == site.expr && objectOf(pass.TypesInfo, x) == site.obj
	case *ast.SelectorExpr:
		return types.ExprString(e) == site.expr && rootObject(pass.TypesInfo, e) == site.obj
	}
	return false
}

// occurrenceAllowed classifies one appearance of the tracked expression.
// stack[len-1] is the occurrence itself.
func occurrenceAllowed(pass *analysis.Pass, stack []ast.Node, site openSite) bool {
	if len(stack) < 2 {
		return false
	}
	parent := stack[len(stack)-2]
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		// sub.Method(...) or sub.field: receiver/field use, never a leak of
		// the meter itself.
		return true
	case *ast.AssignStmt:
		// Appearing as an assignment LHS: the open statement itself, or a
		// rebind that starts a new tracking scope.
		for _, lhs := range p.Lhs {
			if lhs == stack[len(stack)-1] {
				return true
			}
		}
		return false
	case *ast.UnaryExpr:
		// &sub is allowed only as the first argument of a ResetSub re-arm.
		if p.Op.String() != "&" || len(stack) < 3 {
			return false
		}
		call, ok := stack[len(stack)-3].(*ast.CallExpr)
		if !ok || len(call.Args) == 0 || ast.Unparen(call.Args[0]) != ast.Expr(p) {
			return false
		}
		name, ok := meterapi.MeterMethod(pass.TypesInfo, call)
		return ok && name == "ResetSub"
	case *ast.ValueSpec:
		// var sub noise.Meter — the declaration itself.
		return true
	}
	return false
}
