// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against // want "regexp" comments, mirroring the upstream
// golang.org/x/tools/go/analysis/analysistest contract on the stdlib only.
//
// Fixtures live under the analyzer's testdata directory (invisible to the
// go tool, so deliberately-broken code never reaches go build) but are
// type-checked for real: imports — including dpbench's own internal
// packages — resolve against compiled export data from the enclosing
// module's build cache. A fixture declares its findings inline:
//
//	rng.Float64() // want `direct use of math/rand`
//
// Every reported diagnostic must match a want on its line and every want
// must be matched, so both flagged and deliberately-clean fixture code are
// load-bearing. The //lint:allow escape hatch is honored, making the
// suppression path testable too.
package analysistest

import (
	"fmt"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"dpbench/internal/analysis"
	"dpbench/internal/analysis/driver"
	"dpbench/internal/analysis/load"
)

var (
	exporterOnce sync.Once
	exporter     *load.Exporter
	exporterErr  error
)

// moduleExporter returns a process-wide Exporter seeded with the enclosing
// module's full package closure, so fixtures can import any module or
// stdlib package the repo itself can.
func moduleExporter() (*load.Exporter, error) {
	exporterOnce.Do(func() {
		out, err := exec.Command("go", "env", "GOMOD").Output()
		if err != nil {
			exporterErr = fmt.Errorf("analysistest: go env GOMOD: %v", err)
			return
		}
		gomod := strings.TrimSpace(string(out))
		if gomod == "" || gomod == os.DevNull {
			exporterErr = fmt.Errorf("analysistest: not inside a module")
			return
		}
		exporter, exporterErr = load.NewModuleExporter(filepath.Dir(gomod))
	})
	return exporter, exporterErr
}

// Run type-checks the fixture package in dir (relative to the test's
// working directory) under the given import path, applies the analyzer, and
// reports any divergence from the fixture's want comments as test errors.
func Run(t *testing.T, a *analysis.Analyzer, dir, importPath string) {
	t.Helper()
	exp, err := moduleExporter()
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		t.Fatalf("analysistest: no fixture files in %s", dir)
	}
	pkg, err := load.LoadFiles(exp, importPath, files)
	if err != nil {
		t.Fatal(err)
	}
	for _, terr := range pkg.TypeErrs {
		t.Errorf("analysistest: fixture does not type-check: %v", terr)
	}
	if len(pkg.TypeErrs) > 0 {
		t.FailNow()
	}
	findings, err := driver.Analyze(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	wants := collectWants(t, pkg)
	for _, f := range findings {
		key := lineKey{f.Pos.Filename, f.Pos.Line}
		if !matchWant(wants[key], f.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", posString(f.Pos), f.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", key.file, key.line, w.rx.String())
			}
		}
	}
}

type lineKey struct {
	file string
	line int
}

type want struct {
	rx      *regexp.Regexp
	matched bool
}

func posString(p token.Position) string {
	return fmt.Sprintf("%s:%d:%d", p.Filename, p.Line, p.Column)
}

// matchWant marks and returns whether some unmatched expectation on the
// line accepts the message.
func matchWant(ws []*want, message string) bool {
	for _, w := range ws {
		if !w.matched && w.rx.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}

var wantRe = regexp.MustCompile(`^//\s*want\s+(.*)$`)

// collectWants extracts // want "rx" expectations from every comment.
func collectWants(t *testing.T, pkg *load.Package) map[lineKey][]*want {
	t.Helper()
	wants := map[lineKey][]*want{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, lit := range splitLiterals(t, pos, m[1]) {
					rx, err := regexp.Compile(lit)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", posString(pos), lit, err)
					}
					key := lineKey{pos.Filename, pos.Line}
					wants[key] = append(wants[key], &want{rx: rx})
				}
			}
		}
	}
	return wants
}

// splitLiterals parses a sequence of Go string literals ("..." or `...`).
func splitLiterals(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out
		}
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) {
				if s[end] == '\\' {
					end += 2
					continue
				}
				if s[end] == '"' {
					break
				}
				end++
			}
			if end >= len(s) {
				t.Fatalf("%s: unterminated want literal %q", posString(pos), s)
			}
			lit, err := strconv.Unquote(s[:end+1])
			if err != nil {
				t.Fatalf("%s: bad want literal %q: %v", posString(pos), s[:end+1], err)
			}
			out = append(out, lit)
			s = s[end+1:]
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated want literal %q", posString(pos), s)
			}
			out = append(out, s[1:1+end])
			s = s[end+2:]
		default:
			t.Fatalf("%s: want expectations must be quoted string literals, got %q", posString(pos), s)
		}
	}
}
