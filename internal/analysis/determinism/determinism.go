// Package determinism guards the bit-reproducibility invariants the golden
// and Plan-vs-Run equivalence tests depend on. The experiment grid promises
// bit-identical output at any worker count (PR 2), Plan/Execute promises
// bit-identical trials across structure reuse (PR 4) — both die quietly the
// moment an output depends on Go's randomized map iteration order or on
// ambient process state.
//
// In dpbench/internal/{algo,tree,core,experiments,ledger} non-test files it
// flags, inside `for ... range <map>` bodies:
//
//   - assignments through an index into a slice or array (results land in
//     map-iteration order);
//   - append calls, unless the destination is a local that the function
//     sorts afterwards (the collect-sort-iterate idiom is the sanctioned
//     way to walk a map deterministically);
//   - compound floating-point accumulation (+=, -=, *=, /=): float addition
//     is not associative, so even an order-independent *set* of updates
//     produces order-dependent bits. Accumulating into a map entry indexed
//     by the range key stays order-independent and is allowed.
//
// Reads, integer accumulation, and map writes keyed by the range key are
// all order-independent and deliberately not flagged. time.Now and
// os.Getenv/LookupEnv/Environ are banned outright in these packages:
// Plan/Execute paths must be pure functions of (data, workload, eps, seed).
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"dpbench/internal/analysis"
)

// Analyzer is the determinism pass.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "Plan/Execute packages must not depend on map iteration order, wall-clock time, or the environment",
	Run:  run,
}

var scopes = []string{
	"dpbench/internal/algo",
	"dpbench/internal/tree",
	"dpbench/internal/core",
	"dpbench/internal/experiments",
	// The ledger's canonical record encoding is a Merkle leaf: any ambient
	// input (a timestamp, an env-dependent field) would make the same spend
	// hash differently across replicas and replays.
	"dpbench/internal/ledger",
}

func inScope(path string) bool {
	for _, s := range scopes {
		if path == s || strings.HasPrefix(path, s+"/") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if pass.Pkg == nil || !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					checkAmbient(pass, n)
				case *ast.RangeStmt:
					if isMapRange(pass.TypesInfo, n) {
						checkMapRange(pass, fd, n)
					}
				}
				return true
			})
		}
	}
	return nil
}

// checkAmbient flags wall-clock and environment reads.
func checkAmbient(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return
	}
	switch {
	case obj.Pkg().Path() == "time" && obj.Name() == "Now":
		pass.Reportf(call.Pos(), "time.Now in a Plan/Execute package: outputs must be a pure function of (data, workload, eps, seed) for the goldens to hold; measure time in the caller")
	case obj.Pkg().Path() == "os" && (obj.Name() == "Getenv" || obj.Name() == "LookupEnv" || obj.Name() == "Environ"):
		pass.Reportf(call.Pos(), "os.%s in a Plan/Execute package: outputs must be a pure function of (data, workload, eps, seed) for the goldens to hold; plumb configuration through parameters", obj.Name())
	}
}

func isMapRange(info *types.Info, rs *ast.RangeStmt) bool {
	tv, ok := info.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkMapRange inspects one map-range body for order-dependent writes.
func checkMapRange(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) {
	keyObj := rangeVarObj(pass.TypesInfo, rs.Key)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			// A nested map range reports its own body; descending here too
			// would duplicate every finding once per enclosing loop.
			if isMapRange(pass.TypesInfo, n) {
				return false
			}
		case *ast.AssignStmt:
			checkAssign(pass, fd, rs, keyObj, n)
		}
		return true
	})
}

func rangeVarObj(info *types.Info, e ast.Expr) types.Object {
	ident, ok := e.(*ast.Ident)
	if !ok || ident.Name == "_" {
		return nil
	}
	if o := info.Defs[ident]; o != nil {
		return o
	}
	return info.Uses[ident]
}

var compoundOps = map[token.Token]bool{
	token.ADD_ASSIGN: true,
	token.SUB_ASSIGN: true,
	token.MUL_ASSIGN: true,
	token.QUO_ASSIGN: true,
}

func checkAssign(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, keyObj types.Object, as *ast.AssignStmt) {
	// Appends first: s = append(s, ...) is an assignment whose RHS decides.
	for i, rhs := range as.Rhs {
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isAppend(pass.TypesInfo, call) && i < len(as.Lhs) {
			checkAppend(pass, fd, rs, keyObj, as.Lhs[i])
		}
	}
	for _, lhs := range as.Lhs {
		lhs := ast.Unparen(lhs)
		if ix, ok := lhs.(*ast.IndexExpr); ok {
			tv, ok := pass.TypesInfo.Types[ix.X]
			if !ok || tv.Type == nil {
				continue
			}
			switch tv.Type.Underlying().(type) {
			case *types.Slice, *types.Array:
				pass.Reportf(as.Pos(), "writes %s in map-iteration order: slice contents become nondeterministic, breaking the bit-identical goldens; iterate sorted keys instead", types.ExprString(lhs))
				continue
			case *types.Map:
				// Writes keyed by the range key hit disjoint entries: order
				// cannot matter. Any other index may collide across
				// iterations, making last-write and accumulation order
				// nondeterministic.
				if compoundOps[as.Tok] && isFloat(pass.TypesInfo, lhs) && !indexIsRangeKey(pass.TypesInfo, ix, keyObj) {
					pass.Reportf(as.Pos(), "accumulates floating point into %s in map-iteration order: float addition is not associative, so the result is nondeterministic; iterate sorted keys instead", types.ExprString(lhs))
				}
				continue
			}
		}
		if compoundOps[as.Tok] && isFloat(pass.TypesInfo, lhs) {
			pass.Reportf(as.Pos(), "accumulates floating point into %s in map-iteration order: float addition is not associative, so the result is nondeterministic; iterate sorted keys instead", types.ExprString(lhs))
		}
	}
}

// checkAppend flags append inside a map range unless the destination is an
// identifier the enclosing function sorts after the loop.
func checkAppend(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, keyObj types.Object, dst ast.Expr) {
	dst = ast.Unparen(dst)
	if ident, ok := dst.(*ast.Ident); ok {
		obj := rangeVarObj(pass.TypesInfo, ident)
		if obj != nil && sortedAfter(pass, fd, rs, obj) {
			return
		}
		pass.Reportf(dst.Pos(), "appends to %s in map-iteration order without sorting afterwards: element order becomes nondeterministic, breaking the bit-identical goldens; sort the collected slice (or iterate sorted keys)", ident.Name)
		return
	}
	if ix, ok := dst.(*ast.IndexExpr); ok && indexIsRangeKey(pass.TypesInfo, ix, keyObj) {
		// out[k] = append(out[k], ...) keyed by the range key touches
		// disjoint slices; per-slice order does not depend on map order.
		return
	}
	pass.Reportf(dst.Pos(), "appends to %s in map-iteration order: element order becomes nondeterministic, breaking the bit-identical goldens; iterate sorted keys instead", types.ExprString(dst))
}

// indexIsRangeKey reports whether the index expression is exactly the range
// key variable.
func indexIsRangeKey(info *types.Info, ix *ast.IndexExpr, keyObj types.Object) bool {
	if keyObj == nil {
		return false
	}
	ident, ok := ast.Unparen(ix.Index).(*ast.Ident)
	return ok && rangeVarObj(info, ident) == keyObj
}

func isAppend(info *types.Info, call *ast.CallExpr) bool {
	ident, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[ident].(*types.Builtin)
	return ok && b.Name() == "append"
}

func isFloat(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&(types.IsFloat|types.IsComplex) != 0
}

// sortedAfter reports whether obj is passed to a sort call positioned after
// the range statement in the same function.
func sortedAfter(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn := pass.TypesInfo.Uses[sel.Sel]
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		path, name := fn.Pkg().Path(), fn.Name()
		isSort := (path == "sort" && (name == "Strings" || name == "Ints" || name == "Float64s" || name == "Slice" || name == "SliceStable" || name == "Sort" || name == "Stable")) ||
			(path == "slices" && strings.HasPrefix(name, "Sort"))
		if !isSort {
			return true
		}
		arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if ok && rangeVarObj(pass.TypesInfo, arg) == obj {
			found = true
		}
		return !found
	})
	return found
}
