// The same hazards outside the guarded package set produce no findings.
package outofscope

import "time"

func wallClock() int64 {
	return time.Now().Unix()
}

func accumulate(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}
