// Fixture for the determinism analyzer, type-checked under the import path
// dpbench/internal/core so the scope rule applies.
package core

import (
	"os"
	"slices"
	"sort"
	"time"
)

func sliceWrite(m map[string]int, out []float64) {
	for _, v := range m {
		out[v] = 1.0 // want `writes out\[v\] in map-iteration order`
	}
}

func unsortedCollect(m map[string]float64) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `appends to keys in map-iteration order without sorting afterwards`
	}
	return keys
}

// The sanctioned collect-sort-iterate idiom: clean.
func sortedCollect(m map[string]float64) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func slicesSorted(m map[int]float64) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

func accumulate(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `accumulates floating point into sum in map-iteration order`
	}
	return sum
}

// Integer accumulation is associative: clean.
func intAccumulate(m map[string]int) int {
	var n int
	for _, v := range m {
		n += v
	}
	return n
}

// Reading without writing anything order-sensitive: clean.
func readOnly(m map[string]float64, want float64) bool {
	for _, v := range m {
		if v == want {
			return true
		}
	}
	return false
}

// Writes keyed by the range key hit each entry exactly once: clean.
func perKeyWrite(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

func perKeyAppend(m map[string]float64) map[string][]float64 {
	out := make(map[string][]float64, len(m))
	for k, v := range m {
		out[k] = append(out[k], v)
	}
	return out
}

func crossKeyAccum(m map[string]float64, bucket string) map[string]float64 {
	acc := make(map[string]float64)
	for _, v := range m {
		acc[bucket] += v // want `accumulates floating point into acc\[bucket\] in map-iteration order`
	}
	return acc
}

func wallClock() int64 {
	t := time.Now() // want `time.Now in a Plan/Execute package`
	return t.Unix()
}

func ambientEnv() string {
	return os.Getenv("DPBENCH_MODE") // want `os.Getenv in a Plan/Execute package`
}

func allowedAccumulate(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		//lint:allow determinism fixture: order-insensitive tolerance check only
		sum += v
	}
	return sum
}
