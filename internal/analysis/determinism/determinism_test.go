package determinism

import (
	"path/filepath"
	"testing"

	"dpbench/internal/analysis/analysistest"
)

func TestDeterminism(t *testing.T) {
	t.Parallel()
	analysistest.Run(t, Analyzer, filepath.Join("testdata", "src", "a"), "dpbench/internal/core")
}

func TestOutOfScope(t *testing.T) {
	t.Parallel()
	analysistest.Run(t, Analyzer, filepath.Join("testdata", "src", "outofscope"), "dpbench/internal/dataset")
}
