// Doc.go records the eight invariants dpbench-lint enforces at compile time
// and the escape hatches for audited exceptions. The authoritative wording
// of each invariant lives on the Analyzer.Doc of the subpackages; this file
// is the map.
//
// # Why these checks exist
//
// The repo's correctness story rests on properties that used to be checked
// only at runtime: the budget-ledger audit (-audit runs), the golden tests,
// and the Plan-vs-Run bitwise-equivalence tests. A mechanism that draws
// from a raw *rand.Rand, spends under an undeclared ledger label, leaks a
// sub-meter, or iterates a map into an output buffer compiles cleanly and
// fails — at best — in a later runtime audit or a golden diff. The
// analyzers turn that whole bug class into a build failure.
//
// # The eight analyzers
//
//   - noisegate (internal/analysis/noisegate): inside dpbench/internal/algo,
//     privacy-relevant randomness must flow through an accountant-backed
//     noise.Meter. Direct math/rand draws, *rand.Rand method calls (other
//     than on the explicit zero-cost noise.Meter.Rand() path), and
//     hand-rolled math.Log/math.Exp noise synthesis are flagged, because a
//     draw the accountant never sees is a spend the audit can never prove.
//
//   - budgetlabel (internal/analysis/budgetlabel): every ledger label passed
//     to a Meter spend method must be a string constant that the owning
//     mechanism's CompositionPlan() declares (wildcard entries like "level*"
//     included). Two package idioms are resolved rather than rejected:
//     idxLabel(labelTable("kd", n), i) families check against the plan's
//     wildcards, and a label that is a parameter of an unexported helper is
//     checked at each call site against the caller's plan instead.
//     Undeclared-label drift is otherwise caught only when an audited run
//     happens to execute that code path.
//
//   - subclose (internal/analysis/subclose): a meter returned by Sub /
//     SubEps / SubParEps (or re-armed by ResetSub) must be closed back into
//     its parent on every control-flow path, in the style of vet's
//     lostcancel. A leaked sub-meter under-reports spend silently.
//
//   - determinism (internal/analysis/determinism): in dpbench/internal/algo,
//     internal/tree, internal/core, internal/experiments and internal/ledger,
//     map-range iteration must not write slices, append (unless the collected
//     keys are sorted before use), or accumulate floating point — and
//     time.Now / os.Getenv are banned outright. These are exactly the hazards
//     the bit-identical goldens and the Plan-vs-Run equivalence tests depend
//     on; in the ledger the canonical record encoding doubles as a Merkle
//     leaf, so any ambient input would fork the tree across replicas.
//
//   - internalboundary (internal/analysis/internalboundary): only the facade
//     packages (dpbench, dpbench/release, dpbench/privacy) and dpbench/cmd
//     may import dpbench/internal/...; examples must stay on the public API,
//     and internal packages must not import the facade back. This replaces
//     the old grep-based CI step with a real import-graph check.
//
//   - privtaint (internal/analysis/privtaint): the release invariant
//     itself, checked interprocedurally over dpbench/internal/algo and
//     dpbench/internal/serve with the dataflow engine in
//     internal/analysis/dataflow. Values derived from the private histogram
//     (vec.Vector and anything arithmetic touches) must cross an
//     accountant-metered noise draw before reaching Execute's output
//     buffer, an error string, an HTTP response, the durable budget
//     ledger's commit surface (internal/ledger's AppendRecord /
//     EncodeRecord / Tree.Append / Batcher.Submit / Store.Append — leaves
//     and records are republished verbatim by /v1/root and /v1/proof), or
//     — in Execute-phase and serve code — a branch condition. An example
//     finding:
//
//     php.go:187: privtaint: private value passed to abs feeds a branch
//     condition inside it: data-dependent control flow in the execute
//     phase is an uncharged side channel
//
//     Declared public side information (HayMMCZ16 Principle 7: the dataset
//     scale the grid mechanisms use for layout) is exempted per line with
//     `//dp:public <justification>`; every such annotation is part of the
//     audited privacy argument, not a convenience.
//
//   - allocfree (internal/analysis/allocfree): a function annotated
//     `//dp:hotpath` (Plan.Execute bodies, Meter draw paths, the serve
//     answer path) must not heap-allocate per call, verified against the
//     compiler's own escape analysis (go build -gcflags=-m) rather than a
//     benchmark diff. An example finding:
//
//     grid.go:339: allocfree: heap allocation in //dp:hotpath function
//     Execute: make([]float64, area) escapes to heap — hot paths must
//     reuse plan- or pool-owned buffers
//
//     Interface boxing and nested func literals (the sync.Pool refill
//     idiom) are exempt; allocations in un-annotated helpers are invisible
//     to the span check, so helpers that join the contract must be
//     annotated themselves.
//
//   - epsflow (internal/analysis/epsflow): the budget identity itself,
//     proved symbolically. For every mechanism in dpbench/internal/algo —
//     recognized by its Plan(..., eps float64) (plan, error) / Execute(m
//     *noise.Meter, ...) pair — epsflow abstractly interprets the Plan body
//     with epsilon as a symbolic variable, carries the resulting plan into
//     Execute, and tracks every meter charge as an exact linear expression
//     in eps (big.Rat coefficients, so eps/3 + 2*eps/3 is exactly eps).
//     Sequential charges add, parallel charges (ChargePar, SubParEps) max,
//     sub-meters must close back into their parent, and paths join at
//     branches. On every non-exempt outcome path (exempt: paths that
//     provably return a non-nil error before spending) the accumulated
//     total must equal the declared budget exactly — over-spend,
//     under-spend, and branch-asymmetric spend are all compile failures.
//     An example finding, from a plan that charges half its budget up
//     front and then draws at the full rate:
//
//     mech.go:47: epsflow: OverMech over-spends: this path charges
//     3/2*eps of a declared budget eps
//
//     Loops the interpreter cannot close (data-dependent trip counts) are
//     declared with a checked `//dp:spends [par] <expr>` annotation on the
//     line above the loop: the expression (any linear combination of the
//     plan's epsilon fields, e.g. `//dp:spends p.eps / 2`) is what the
//     loop charges in total, `par` marks a parallel-composition loop. The
//     annotation is verified, not trusted — for closable loops the
//     declared total is cross-checked against the proven per-iteration
//     footprint, and for open loops the per-iteration charge must be an
//     epsilon-free multiple of a single stream so the declared total is
//     the only free parameter. epsflow is the static complement of the
//     runtime -audit flag: -audit replays one execution and checks the
//     ledger for the paths that run; epsflow proves the identity over
//     every path of every mechanism at compile time, including error
//     paths and branch arms no audit input exercises.
//
// # Escape hatches
//
// A finding that is understood and deliberately accepted — for example the
// legacy-sampler path planned in ROADMAP item 2, which must keep the exact
// historical draw sequence — is silenced with a comment on the flagged line
// or the line directly above it:
//
//	//lint:allow noisegate legacy sampler keeps the golden draw order
//
// The analyzer name is required; everything after it is the justification
// and should cite why the invariant holds anyway. Allow comments are
// scoped to a single line so an exception can never grow silently — and a
// grant that no longer silences anything is itself reported by the driver
// (pseudo-analyzer "unusedallow"), so stale suppressions cannot accumulate.
//
// The three annotations the new analyzers read are affirmative declarations
// rather than suppressions: `//dp:public <why>` declares a value as audited
// public side information (privtaint), `//dp:hotpath` declares a
// zero-allocation contract the compiler is asked to verify (allocfree), and
// `//dp:spends [par] <expr>` declares — and submits for verification — the
// total epsilon a loop charges (epsflow).
package analysis
