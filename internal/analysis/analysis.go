// Package analysis is a dependency-free reimplementation of the core of
// golang.org/x/tools/go/analysis, just large enough to host dpbench's own
// static checkers (see doc.go for the invariants they enforce).
//
// The API deliberately mirrors the upstream package — Analyzer, Pass,
// Diagnostic, Reportf — so the analyzers under internal/analysis/... can be
// ported to the real go/analysis multichecker by swapping one import when a
// vendored golang.org/x/tools becomes available. The repo's build
// environment has no module network access and an empty module cache, so
// the framework itself (package loading, type checking, the vet driver
// protocol, fixture tests) is built on the standard library alone:
// `go list -export -json` supplies the package graph and compiled export
// data, and go/types + go/importer type-check the target sources against it.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static check: a name, a documentation string
// stating the invariant it enforces, and a Run function applied once per
// type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow comments. It must be a valid Go identifier.
	Name string

	// Doc is the one-paragraph statement of the invariant.
	Doc string

	// Run applies the check to a single package. Findings are delivered
	// through pass.Report / pass.Reportf; the error return is for the
	// analyzer itself failing, not for findings.
	Run func(*Pass) error
}

// A Pass supplies an Analyzer with one type-checked package and a sink for
// its diagnostics. Analyzers must treat every field as read-only.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File    // non-test sources of the package, parsed with comments
	Pkg       *types.Package // the type-checked package
	TypesInfo *types.Info    // type facts for Files
	Report    func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
