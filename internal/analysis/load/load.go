// Package load turns Go package patterns into parsed, type-checked packages
// using only the standard library and the go tool itself.
//
// `go list -export -json -deps` supplies both the package graph and the
// compiled export data for every dependency (the go tool builds it into the
// local build cache, no network involved); go/parser and go/types then check
// the target sources against that export data via the stdlib gc importer.
// This is the same shape as golang.org/x/tools/go/packages.Load with
// NeedTypes, rebuilt on the stdlib because the build environment cannot
// fetch x/tools.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
)

// Meta is the subset of `go list -json` output the loader consumes.
type Meta struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Module     *Module
	Error      *ListError
}

// Module identifies the module a package belongs to.
type Module struct {
	Path string
	Dir  string
}

// ListError is a package-level error reported by go list.
type ListError struct {
	Err string
}

// Package is one parsed and type-checked package.
type Package struct {
	Meta      *Meta
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	TypeErrs  []error
}

// goList runs `go list` in dir and decodes its JSON package stream.
func goList(dir string, args ...string) ([]*Meta, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", args, err, stderr.String())
	}
	var metas []*Meta
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		m := new(Meta)
		if err := dec.Decode(m); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", args, err)
		}
		metas = append(metas, m)
	}
	return metas, nil
}

// An Exporter resolves import paths to compiled export data, shelling out to
// `go list -export` on demand for paths outside the already-known closure
// (e.g. a test fixture importing a stdlib package the module never uses).
type Exporter struct {
	dir string

	mu    sync.Mutex
	files map[string]string // import path -> export data file
}

// NewExporter returns an Exporter that resolves packages relative to dir
// (any directory inside the module).
func NewExporter(dir string) *Exporter {
	return &Exporter{dir: dir, files: map[string]string{}}
}

// NewModuleExporter returns an Exporter pre-seeded with the full package
// closure of the module rooted at dir, so lookups of any package the module
// builds against resolve without further go list round trips.
func NewModuleExporter(dir string) (*Exporter, error) {
	metas, err := goList(dir, "-export", "-json", "-deps", "./...")
	if err != nil {
		return nil, err
	}
	e := NewExporter(dir)
	e.Add(metas)
	return e, nil
}

// Add records the export data locations of the given packages.
func (e *Exporter) Add(metas []*Meta) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, m := range metas {
		if m.Export != "" {
			e.files[m.ImportPath] = m.Export
		}
	}
}

// Lookup returns a reader over the export data for path, for use with the
// stdlib gc importer.
func (e *Exporter) Lookup(path string) (io.ReadCloser, error) {
	e.mu.Lock()
	f, ok := e.files[path]
	e.mu.Unlock()
	if !ok {
		metas, err := goList(e.dir, "-export", "-json", "-deps", path)
		if err != nil {
			return nil, fmt.Errorf("load: no export data for %q: %v", path, err)
		}
		e.Add(metas)
		e.mu.Lock()
		f, ok = e.files[path]
		e.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("load: go list produced no export data for %q", path)
		}
	}
	return os.Open(f)
}

// Load lists patterns in dir and returns every non-dependency module package,
// parsed with comments and type-checked against compiled export data.
func Load(dir string, patterns ...string) ([]*Package, error) {
	metas, err := goList(dir, append([]string{"-export", "-json", "-deps"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exp := NewExporter(dir)
	exp.Add(metas)
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exp.Lookup)
	var pkgs []*Package
	for _, m := range metas {
		if m.DepOnly || m.Standard || m.Module == nil {
			continue
		}
		if m.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", m.ImportPath, m.Error.Err)
		}
		var files []string
		for _, f := range m.GoFiles {
			files = append(files, filepath.Join(m.Dir, f))
		}
		pkg, err := check(fset, imp, m, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadFiles parses and type-checks one package from an explicit file list
// under an explicit import path, resolving imports through exp. It is the
// entry point for analysistest fixtures (whose sources live under testdata,
// invisible to go list) and for the vet driver protocol.
func LoadFiles(exp *Exporter, importPath string, files []string) (*Package, error) {
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exp.Lookup)
	return check(fset, imp, &Meta{ImportPath: importPath}, files)
}

// LoadFilesLookup is LoadFiles with a caller-supplied export-data lookup. It
// exists for the go vet driver protocol, where the go command hands the tool
// an explicit import-path -> export-file map instead of letting it shell out
// to go list.
func LoadFilesLookup(lookup func(path string) (io.ReadCloser, error), importPath string, files []string) (*Package, error) {
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", lookup)
	return check(fset, imp, &Meta{ImportPath: importPath}, files)
}

// check parses files and type-checks them as the package described by m.
// Type errors are collected on the returned Package, not fatal: analyzers
// still run so a single bad file does not hide every other finding.
func check(fset *token.FileSet, imp types.Importer, m *Meta, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load: %v", err)
		}
		files = append(files, f)
	}
	pkg := &Package{
		Meta:  m,
		Fset:  fset,
		Files: files,
		TypesInfo: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		},
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrs = append(pkg.TypeErrs, err) },
	}
	// Check returns the first error too; it is already in TypeErrs.
	pkg.Types, _ = conf.Check(m.ImportPath, fset, files, pkg.TypesInfo)
	return pkg, nil
}
