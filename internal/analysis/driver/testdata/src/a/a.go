// Fixture for the driver's ordering and allow-tracking tests. The test's
// toy analyzers report one finding per function declaration, deliberately
// walking files and declarations in reverse.
package a

func First() int { return 1 }

//lint:allow zeta,alpha fixture: grant consumed by the decl below
func Silenced() int { return 2 }

// A grant that silences nothing; the driver must surface it — once per
// named analyzer, in a stable order.
//
//lint:allow zeta,alpha fixture: stale grant, nothing to silence here

func Third() int { return 3 }
