package a

func Fourth() int { return 4 }

func Fifth() int { return 5 }
