// Package driver applies a set of analyzers to loaded packages, honoring
// the //lint:allow escape hatch, and renders findings in the conventional
// file:line:col form.
package driver

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"dpbench/internal/analysis"
	"dpbench/internal/analysis/load"
)

// A Finding is one diagnostic from one analyzer, resolved to a position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding as "file:line:col: analyzer: message".
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyze runs every analyzer over one package, drops findings silenced by a
// //lint:allow comment, and returns the rest sorted by position. A grant
// that silences nothing is itself reported (as pseudo-analyzer
// "unusedallow"), so stale suppressions cannot accumulate — but only when
// the analyzer it names actually ran in this call, so a single-analyzer run
// (analysistest, vet unit) never flags grants aimed at the rest of the
// roster.
func Analyze(pkg *load.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	allowed := collectAllows(pkg)
	var findings []Finding
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			pos := pkg.Fset.Position(d.Pos)
			if g := allowed[allowKey{pos.Filename, pos.Line, name}]; g != nil {
				g.used = true
				return
			}
			if g := allowed[allowKey{pos.Filename, pos.Line - 1, name}]; g != nil {
				g.used = true
				return
			}
			findings = append(findings, Finding{Analyzer: name, Pos: pos, Message: d.Message})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("driver: analyzer %s on %s: %v", a.Name, pkg.Meta.ImportPath, err)
		}
	}
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	for key, g := range allowed {
		if g.used || !ran[key.analyzer] {
			continue
		}
		findings = append(findings, Finding{
			Analyzer: "unusedallow",
			Pos:      g.pos,
			Message:  fmt.Sprintf("unused //lint:allow %s directive: nothing on this line or the next was silenced — remove it", key.analyzer),
		})
	}
	findings = mergeDuplicates(findings)
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if findings[i].Analyzer != findings[j].Analyzer {
			return findings[i].Analyzer < findings[j].Analyzer
		}
		// Full tiebreak down to the message: same-position findings from one
		// analyzer (e.g. two unused allow grants on one line) must render in
		// a stable order regardless of map iteration.
		return findings[i].Message < findings[j].Message
	})
	return findings, nil
}

// mergeDuplicates folds findings that agree on (file, line, col, message)
// into one finding naming every analyzer that produced it, comma-joined in
// name order. Two analyzers flagging the same call with the same words is
// one defect, but dropping either name would hide which invariants it
// violates — and which //lint:allow grants a suppression needs.
func mergeDuplicates(findings []Finding) []Finding {
	type dupKey struct {
		file      string
		line, col int
		message   string
	}
	names := map[dupKey][]string{}
	order := map[dupKey]int{}
	for i, f := range findings {
		k := dupKey{f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message}
		if _, seen := names[k]; !seen {
			order[k] = i
		}
		names[k] = append(names[k], f.Analyzer)
	}
	var out []Finding
	for i, f := range findings {
		k := dupKey{f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message}
		if order[k] != i {
			continue
		}
		ns := names[k]
		sort.Strings(ns)
		uniq := ns[:0]
		for _, n := range ns {
			if len(uniq) == 0 || uniq[len(uniq)-1] != n {
				uniq = append(uniq, n)
			}
		}
		f.Analyzer = strings.Join(uniq, ",")
		out = append(out, f)
	}
	return out
}

// allowKey addresses one (file, line, analyzer) allow grant. A grant on line
// N silences that analyzer's findings on lines N and N+1, so the comment can
// sit either on the flagged line or directly above it.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// allowGrant tracks whether one grant ever silenced a finding.
type allowGrant struct {
	pos  token.Position
	used bool
}

// collectAllows scans every comment in the package for the escape hatch:
//
//	//lint:allow analyzer[,analyzer...] justification
func collectAllows(pkg *load.Package) map[allowKey]*allowGrant {
	allowed := map[allowKey]*allowGrant{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "lint:allow") {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, "lint:allow"))
				if len(fields) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, name := range strings.Split(fields[0], ",") {
					allowed[allowKey{pos.Filename, pos.Line, name}] = &allowGrant{pos: pos}
				}
			}
		}
	}
	return allowed
}
