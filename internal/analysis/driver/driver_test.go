package driver_test

import (
	"fmt"
	"go/ast"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"dpbench/internal/analysis"
	"dpbench/internal/analysis/driver"
	"dpbench/internal/analysis/load"
)

// reportDecls builds a toy analyzer that reports every function declaration
// — walking files and declarations in REVERSE, so any ordering the caller
// observes comes from the driver's sort, not from emission order.
func reportDecls(name string) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: name,
		Doc:  "test analyzer reporting all func decls in reverse",
		Run: func(pass *analysis.Pass) error {
			for i := len(pass.Files) - 1; i >= 0; i-- {
				f := pass.Files[i]
				for j := len(f.Decls) - 1; j >= 0; j-- {
					if fd, ok := f.Decls[j].(*ast.FuncDecl); ok {
						pass.Reportf(fd.Pos(), "func %s", fd.Name.Name)
					}
				}
			}
			return nil
		},
	}
}

func loadFixture(t *testing.T) *load.Package {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	exp, err := load.NewModuleExporter(filepath.Dir(strings.TrimSpace(string(out))))
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", "src", "a")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(files)
	pkg, err := load.LoadFiles(exp, "dpbench/internal/analysis/driver/testdata/src/a", files)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// TestFindingOrderDeterministic pins the driver's output contract: findings
// are sorted by file, line, column, analyzer, message — identically on
// every run — with suppressed findings dropped and stale grants surfaced.
func TestFindingOrderDeterministic(t *testing.T) {
	pkg := loadFixture(t)
	// "zeta" runs before "alpha": the sort, not run order, must decide.
	analyzers := []*analysis.Analyzer{reportDecls("zeta"), reportDecls("alpha")}

	var first []string
	for run := 0; run < 3; run++ {
		findings, err := driver.Analyze(pkg, analyzers)
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		for _, f := range findings {
			got = append(got, f.String())
		}
		if !sort.SliceIsSorted(findings, func(i, j int) bool {
			a, b := findings[i], findings[j]
			ka := fmt.Sprintf("%s\x00%08d\x00%08d\x00%s\x00%s", a.Pos.Filename, a.Pos.Line, a.Pos.Column, a.Analyzer, a.Message)
			kb := fmt.Sprintf("%s\x00%08d\x00%08d\x00%s\x00%s", b.Pos.Filename, b.Pos.Line, b.Pos.Column, b.Analyzer, b.Message)
			return ka < kb
		}) {
			t.Fatalf("run %d: findings not sorted:\n%s", run, strings.Join(got, "\n"))
		}
		if run == 0 {
			first = got
			continue
		}
		if !reflect.DeepEqual(first, got) {
			t.Fatalf("run %d differs from run 0:\n%s\nvs\n%s", run, strings.Join(got, "\n"), strings.Join(first, "\n"))
		}
	}

	joined := strings.Join(first, "\n")
	if strings.Contains(joined, "Silenced") {
		t.Errorf("silenced finding leaked through the allow grant:\n%s", joined)
	}
	// Both analyzers flag every declaration with identical text: the driver
	// merges each pair into one finding naming both, in name order.
	for _, fn := range []string{"First", "Third", "Fourth", "Fifth"} {
		if got := strings.Count(joined, "func "+fn); got != 1 {
			t.Errorf("func %s reported %d times, want 1 merged finding:\n%s", fn, got, joined)
		}
		if !strings.Contains(joined, "alpha,zeta: func "+fn) {
			t.Errorf("func %s not attributed to both analyzers:\n%s", fn, joined)
		}
	}
	// The stale grant names two analyzers; both must be surfaced, and the
	// message tiebreak keeps their order stable.
	if got := strings.Count(joined, "unusedallow"); got != 2 {
		t.Errorf("want 2 unusedallow findings for the stale grant, got %d:\n%s", got, joined)
	}
}

// TestUnusedAllowScopedToRanAnalyzers: a grant naming an analyzer that did
// not run in this Analyze call is not the driver's business — this is what
// keeps single-analyzer fixture runs quiet about the rest of the roster.
func TestUnusedAllowScopedToRanAnalyzers(t *testing.T) {
	pkg := loadFixture(t)
	findings, err := driver.Analyze(pkg, []*analysis.Analyzer{reportDecls("alpha")})
	if err != nil {
		t.Fatal(err)
	}
	var unused []string
	for _, f := range findings {
		if f.Analyzer == "unusedallow" {
			unused = append(unused, f.Message)
		}
	}
	if len(unused) != 1 || !strings.Contains(unused[0], "alpha") {
		t.Fatalf("want exactly the stale alpha grant flagged, got %q", unused)
	}
}
