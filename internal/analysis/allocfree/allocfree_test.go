package allocfree

import (
	"path/filepath"
	"testing"

	"dpbench/internal/analysis/analysistest"
)

// The fixture is loaded under its real on-disk import path: escape
// diagnostics come from running the compiler over the directory, so the
// package must be buildable in place.
func TestAllocfree(t *testing.T) {
	t.Parallel()
	analysistest.Run(t, Analyzer, filepath.Join("testdata", "src", "hot"),
		"dpbench/internal/analysis/allocfree/testdata/src/hot")
}
