// Package allocfree turns the repo's zero-alloc hot-path discipline into a
// build failure instead of a benchmark diff. A function annotated with
// `//dp:hotpath` in (or directly above) its doc comment declares that its
// body performs no per-call heap allocation — the contract PRs 2/4/7
// established for Plan.Execute bodies, the Meter draw paths, and the serve
// request path, previously guarded only by AllocsPerRun benchmarks.
//
// The analyzer shells out to the compiler's own escape analysis
// (`go build -gcflags=<pkg>=-m`) and maps the diagnostics back onto the
// annotated bodies. Only allocation-class messages are flagged:
//
//   - `make(...)` / `new(...)` escaping to the heap (a non-constant-size
//     make always does, which is exactly the "fresh per-trial buffer" bug);
//   - composite literals escaping (`&T{...}` / `T{...}`);
//   - `moved to heap: x` (a local forced off the stack).
//
// Interface-boxing escapes (`eps escapes to heap` feeding an error path)
// and `func literal escapes to heap` are ignored: cold error paths may box,
// and sync.Pool New closures exist to allocate. For the same reason,
// allocations inside a nested func literal of a hot function are exempt —
// the pool-refill idiom puts the deliberate allocation there. Slice growth
// through append is invisible to -m and stays the benchmarks' job; the two
// guards are complementary.
//
// The compiler's build cache replays -m diagnostics, so repeat runs cost a
// cache probe, not a rebuild.
package allocfree

import (
	"fmt"
	"go/ast"
	"go/token"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"dpbench/internal/analysis"
)

// Analyzer is the allocfree pass.
var Analyzer = &analysis.Analyzer{
	Name: "allocfree",
	Doc:  "//dp:hotpath functions must not heap-allocate per call (checked against go build -gcflags=-m)",
	Run:  run,
}

// span is a half-open position range in one file.
type span struct {
	file       string
	start, end int // line numbers, inclusive
	fn         string
	exempt     []span // nested func literals
}

// allocClass matches the escape-analysis messages that are real
// allocations rather than interface boxing.
var allocClass = regexp.MustCompile(`^(make\(.*\) escapes to heap|new\(.*\) escapes to heap|&?[\w.\[\]{}*]+\{\.\.\.\} escapes to heap|moved to heap: .*)$`)

// diagLine parses `path/file.go:12:34: message` (the -m output shape).
var diagLine = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

func run(pass *analysis.Pass) error {
	if pass.Pkg == nil || !strings.HasPrefix(pass.Pkg.Path(), "dpbench/") {
		return nil
	}
	spans := hotpathSpans(pass)
	if len(spans) == 0 {
		return nil
	}
	dir := filepath.Dir(pass.Fset.Position(pass.Files[0].Pos()).Filename)
	diags, err := escapeDiagnostics(dir)
	if err != nil {
		// Escape analysis is best-effort: a sandboxed or cache-less
		// environment must not fail the whole lint run.
		return nil
	}
	for _, d := range diags {
		if !allocClass.MatchString(d.msg) {
			continue
		}
		for _, sp := range spans {
			if !sp.contains(d.file, d.line) {
				continue
			}
			pos := positionFor(pass.Fset, d.file, d.line, d.col)
			pass.Reportf(pos, "heap allocation in //dp:hotpath function %s: %s — hot paths must reuse plan- or pool-owned buffers (compiler escape analysis)", sp.fn, d.msg)
			break
		}
	}
	return nil
}

// contains reports whether (file, line) falls in the span but not in a
// nested exempt range.
func (s span) contains(file string, line int) bool {
	if filepath.Base(file) != filepath.Base(s.file) || line < s.start || line > s.end {
		return false
	}
	for _, ex := range s.exempt {
		if line >= ex.start && line <= ex.end {
			return false
		}
	}
	return true
}

// hotpathSpans collects the body ranges of //dp:hotpath functions,
// recording nested func literals as exempt sub-ranges.
func hotpathSpans(pass *analysis.Pass) []span {
	// Comment lines carrying the annotation, per file.
	marks := map[string]map[int]bool{}
	for _, file := range pass.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "dp:hotpath") {
					continue
				}
				p := pass.Fset.Position(c.Pos())
				if marks[p.Filename] == nil {
					marks[p.Filename] = map[int]bool{}
				}
				marks[p.Filename][p.Line] = true
			}
		}
	}
	if len(marks) == 0 {
		return nil
	}
	var spans []span
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			p := pass.Fset.Position(fd.Pos())
			lines := marks[p.Filename]
			if lines == nil {
				continue
			}
			// Annotation anywhere in the doc comment, or directly above.
			annotated := lines[p.Line-1]
			if fd.Doc != nil {
				dp := pass.Fset.Position(fd.Doc.Pos())
				de := pass.Fset.Position(fd.Doc.End())
				for l := dp.Line; l <= de.Line; l++ {
					if lines[l] {
						annotated = true
					}
				}
			}
			if !annotated {
				continue
			}
			sp := span{
				file:  p.Filename,
				start: pass.Fset.Position(fd.Body.Pos()).Line,
				end:   pass.Fset.Position(fd.Body.End()).Line,
				fn:    fd.Name.Name,
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					sp.exempt = append(sp.exempt, span{
						start: pass.Fset.Position(fl.Body.Pos()).Line,
						end:   pass.Fset.Position(fl.Body.End()).Line,
					})
				}
				return true
			})
			spans = append(spans, sp)
		}
	}
	return spans
}

// diag is one parsed compiler diagnostic.
type diag struct {
	file string
	line int
	col  int
	msg  string
}

// escapeDiagnostics runs the compiler's escape analysis over the package
// in dir and parses the -m output. A pattern-less -gcflags applies only to
// the package named on the command line, so dependencies build without -m;
// the go build cache replays the diagnostics on unchanged inputs, so this
// is cheap after the first run.
func escapeDiagnostics(dir string) ([]diag, error) {
	cmd := exec.Command("go", "build", "-gcflags=-m", "-o", "/dev/null", ".")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("allocfree: go build -gcflags=-m in %s: %v", dir, err)
	}
	var diags []diag
	for _, line := range strings.Split(string(out), "\n") {
		m := diagLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ln, err1 := strconv.Atoi(m[2])
		col, err2 := strconv.Atoi(m[3])
		if err1 != nil || err2 != nil {
			continue
		}
		diags = append(diags, diag{file: m[1], line: ln, col: col, msg: m[4]})
	}
	return diags, nil
}

// positionFor maps (file, line, col) back to a token.Pos in the fileset,
// matching by basename since the compiler prints dir-relative paths.
func positionFor(fset *token.FileSet, file string, line, col int) token.Pos {
	var pos token.Pos
	base := filepath.Base(file)
	fset.Iterate(func(f *token.File) bool {
		if filepath.Base(f.Name()) != base {
			return true
		}
		if line > f.LineCount() {
			return false
		}
		p := f.LineStart(line)
		pos = p + token.Pos(col-1)
		if int(pos-f.Pos(0)) >= f.Size() {
			pos = p
		}
		return false
	})
	return pos
}
