// Fixture for the allocfree analyzer. Unlike most fixtures this package
// must actually build: the analyzer shells out to the compiler's escape
// analysis over the on-disk directory, so the findings here come from real
// -m diagnostics, not a mock.
package hot

import "sync"

// hotAlloc grows a fresh buffer per call — the exact per-trial allocation
// bug the annotation forbids. Annotated inside the doc comment.
//
//dp:hotpath
func hotAlloc(n int) float64 {
	buf := make([]float64, n) // want `heap allocation in //dp:hotpath function hotAlloc`
	s := 0.0
	for i := range buf {
		s += buf[i]
	}
	return s
}

//dp:hotpath
func hotMoved() *int {
	x := 3 // want `heap allocation in //dp:hotpath function hotMoved`
	return &x
}

// hotClean reuses the caller's buffer: the contract-compliant shape.
//
//dp:hotpath
func hotClean(dst []float64) {
	for i := range dst {
		dst[i] = float64(i)
	}
}

// coldAlloc allocates but carries no annotation, so it is out of scope.
func coldAlloc(n int) []float64 {
	return make([]float64, n)
}

var pool = sync.Pool{New: func() any {
	return make([]float64, 1024)
}}

// hotPooled draws from a shared pool; Get/Put box the slice into an
// interface, which is boxing-class and deliberately ignored.
//
//dp:hotpath
func hotPooled() float64 {
	buf := pool.Get().([]float64)
	defer pool.Put(buf)
	return buf[0]
}

// hotRefill's nested literal allocates on purpose (the pool-refill idiom);
// func literal bodies are exempt sub-ranges.
//
//dp:hotpath
func hotRefill() func() []float64 {
	return func() []float64 {
		return make([]float64, 64) // exempt: nested func literal
	}
}

var (
	_ = hotAlloc
	_ = hotMoved
	_ = hotClean
	_ = coldAlloc
	_ = hotPooled
	_ = hotRefill
)
