// Package stats provides the statistical machinery DPBench's measurement and
// interpretation standards require (Sections 5.3-5.4 of the paper): summary
// statistics, empirical percentiles, Welch's unpaired t-test with exact
// p-values via the regularized incomplete beta function, Bonferroni
// correction, and the geometric-mean "regret" measure from Section 7.2.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 for fewer than two
// observations).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Percentile returns the p-th percentile (p in [0,100]) of xs using linear
// interpolation between order statistics. DPBench reports the 95th percentile
// as its risk-averse error measure (Principle 8). It copies xs; repeated
// aggregation should reuse a Scratch instead.
func Percentile(xs []float64, p float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return PercentileSorted(s, p)
}

// PercentileSorted is Percentile for an already ascending-sorted slice; it
// allocates nothing.
func PercentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Scratch reuses one sort buffer across error-metric computations, so
// aggregating many trial vectors (percentiles per algorithm per setting)
// stays off the allocator. The zero value is ready to use; a Scratch is not
// safe for concurrent use.
type Scratch struct {
	buf []float64
}

// Percentile computes the p-th percentile of xs without mutating it, reusing
// the scratch buffer as sorting space.
func (s *Scratch) Percentile(xs []float64, p float64) float64 {
	s.buf = append(s.buf[:0], xs...)
	sort.Float64s(s.buf)
	return PercentileSorted(s.buf, p)
}

// GeoMean returns the geometric mean of strictly positive values; entries
// that are not positive are skipped. It underpins the regret measure.
func GeoMean(xs []float64) float64 {
	var logSum float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			logSum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// TTestResult reports the outcome of Welch's unpaired two-sample t-test.
type TTestResult struct {
	T  float64 // test statistic
	DF float64 // Welch-Satterthwaite degrees of freedom
	P  float64 // two-sided p-value
}

// WelchTTest performs an unpaired two-sample t-test without assuming equal
// variances, as DPBench uses to decide whether the difference between an
// algorithm's error and the minimum error is statistically significant
// (Section 5.3). Degenerate inputs (fewer than two samples per group, or two
// identical constant groups) yield P = 1.
func WelchTTest(a, b []float64) TTestResult {
	if len(a) < 2 || len(b) < 2 {
		return TTestResult{P: 1}
	}
	ma, mb := Mean(a), Mean(b)
	va, vb := Variance(a), Variance(b)
	na, nb := float64(len(a)), float64(len(b))
	se2 := va/na + vb/nb
	if se2 == 0 {
		if ma == mb {
			return TTestResult{P: 1}
		}
		return TTestResult{T: math.Inf(sign(ma - mb)), DF: na + nb - 2, P: 0}
	}
	t := (ma - mb) / math.Sqrt(se2)
	dfNum := se2 * se2
	dfDen := (va/na)*(va/na)/(na-1) + (vb/nb)*(vb/nb)/(nb-1)
	df := dfNum / dfDen
	return TTestResult{T: t, DF: df, P: studentTTwoSided(t, df)}
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// studentTTwoSided returns the two-sided p-value for a Student-t statistic t
// with df degrees of freedom using the identity
// P(|T| > t) = I_{df/(df+t^2)}(df/2, 1/2).
func studentTTwoSided(t, df float64) float64 {
	if math.IsInf(t, 0) {
		return 0
	}
	x := df / (df + t*t)
	return RegIncBeta(df/2, 0.5, x)
}

// Bonferroni returns the corrected significance level alpha/m for m
// simultaneous tests (m >= 1). DPBench compares each of nalgs-1 algorithms
// against the best one, so m = nalgs-1.
func Bonferroni(alpha float64, m int) float64 {
	if m < 1 {
		m = 1
	}
	return alpha / float64(m)
}

// Regret computes the geometric mean over settings of err[i]/oracle[i], where
// oracle[i] is the minimum error any algorithm achieved on setting i
// (Section 7.2). Settings where either entry is non-positive are skipped.
func Regret(err, oracle []float64) float64 {
	if len(err) != len(oracle) {
		panic("stats: regret length mismatch")
	}
	ratios := make([]float64, 0, len(err))
	for i := range err {
		if err[i] > 0 && oracle[i] > 0 {
			ratios = append(ratios, err[i]/oracle[i])
		}
	}
	return GeoMean(ratios)
}

// RegIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the standard continued-fraction expansion (Lentz's algorithm), the
// same approach as Numerical Recipes' betai. Accurate to ~1e-12 for the
// parameter ranges t-tests produce.
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(lbeta + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betaCF evaluates the continued fraction for the incomplete beta function.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		mf := float64(m)
		m2 := 2 * mf
		aa := mf * (b - mf) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + mf) * (qab + mf) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
