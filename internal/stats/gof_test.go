package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestKSStatisticExactGrid(t *testing.T) {
	// A perfectly spaced uniform sample at the midpoints i+0.5 of n bins has
	// empirical CDF within 1/(2n) of the uniform CDF everywhere.
	const n = 100
	sample := make([]float64, n)
	for i := range sample {
		sample[i] = (float64(i) + 0.5) / n
	}
	d := KSStatistic(sample, func(x float64) float64 { return x })
	if math.Abs(d-1.0/(2*n)) > 1e-12 {
		t.Fatalf("KS of midpoint grid = %v, want %v", d, 1.0/(2*n))
	}
}

func TestKSStatisticDetectsWrongCDF(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sample := make([]float64, 2000)
	for i := range sample {
		sample[i] = rng.Float64() // uniform
	}
	// Against the wrong hypothesis (Uniform^2's CDF sqrt(x)) the statistic
	// must blow well past the 0.001-level critical value; against the right
	// one it must stay under it.
	wrong := KSStatistic(sample, math.Sqrt)
	right := KSStatistic(sample, func(x float64) float64 { return x })
	crit := KSCriticalValue(len(sample), 1e-3)
	if wrong < crit {
		t.Fatalf("KS against wrong CDF = %v, expected > critical %v", wrong, crit)
	}
	if right > crit {
		t.Fatalf("KS against true CDF = %v, expected < critical %v", right, crit)
	}
}

func TestKSCriticalValueKnown(t *testing.T) {
	// The classical alpha = 0.05 asymptotic constant is 1.358/sqrt(n).
	got := KSCriticalValue(10_000, 0.05)
	want := 1.3581 / 100
	if math.Abs(got-want) > 1e-4 {
		t.Fatalf("KS critical value = %v, want about %v", got, want)
	}
	if !math.IsNaN(KSCriticalValue(0, 0.05)) || !math.IsNaN(KSCriticalValue(10, 0)) {
		t.Fatal("invalid arguments must yield NaN")
	}
}

func TestChiSquareStatistic(t *testing.T) {
	if x := ChiSquareStatistic([]float64{10, 20, 30}, []float64{10, 20, 30}); x != 0 {
		t.Fatalf("exact match must score 0, got %v", x)
	}
	// One bin off by 3 with expectation 9 contributes exactly 1.
	if x := ChiSquareStatistic([]float64{12, 20}, []float64{9, 20}); math.Abs(x-1) > 1e-12 {
		t.Fatalf("X2 = %v, want 1", x)
	}
	if !math.IsNaN(ChiSquareStatistic([]float64{1}, []float64{1, 2})) {
		t.Fatal("length mismatch must yield NaN")
	}
	if !math.IsNaN(ChiSquareStatistic([]float64{1}, []float64{0})) {
		t.Fatal("non-positive expectation must yield NaN")
	}
}

func TestChiSquareCriticalValueKnown(t *testing.T) {
	// Table values: chi2(0.95; 10) = 18.307, chi2(0.99; 30) = 50.892. The
	// Wilson-Hilferty approximation is good to well under 1% here.
	cases := []struct {
		df    int
		alpha float64
		want  float64
	}{
		{10, 0.05, 18.307},
		{30, 0.01, 50.892},
		{63, 0.001, 103.442},
	}
	for _, c := range cases {
		got := ChiSquareCriticalValue(c.df, c.alpha)
		if math.Abs(got-c.want)/c.want > 0.01 {
			t.Fatalf("chi2 critical(df=%d, alpha=%v) = %v, want about %v", c.df, c.alpha, got, c.want)
		}
	}
	if !math.IsNaN(ChiSquareCriticalValue(0, 0.05)) || !math.IsNaN(ChiSquareCriticalValue(5, 1)) {
		t.Fatal("invalid arguments must yield NaN")
	}
}

func TestNormalQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.025, -1.959964},
		{0.999, 3.090232},
		{0.001, -3.090232},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); math.Abs(got-c.want) > 1e-5 {
			t.Fatalf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(NormalQuantile(0)) || !math.IsNaN(NormalQuantile(1)) {
		t.Fatal("quantile outside (0,1) must yield NaN")
	}
}
