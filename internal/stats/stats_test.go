package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestVariance(t *testing.T) {
	if got := Variance([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(got-4.571428571) > 1e-6 {
		t.Fatalf("Variance = %v, want ~4.571", got)
	}
	if got := Variance([]float64{3}); got != 0 {
		t.Fatalf("Variance of singleton = %v, want 0", got)
	}
}

func TestStdDevMatchesVariance(t *testing.T) {
	xs := []float64{1, 5, 9, 13}
	if got, want := StdDev(xs), math.Sqrt(Variance(xs)); got != want {
		t.Fatalf("StdDev = %v, want %v", got, want)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {95, 4.8},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("Percentile(nil) = %v, want 0", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		p1 := 100 * rng.Float64()
		p2 := 100 * rng.Float64()
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return Percentile(xs, p1) <= Percentile(xs, p2)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("GeoMean = %v, want 2", got)
	}
	if got := GeoMean([]float64{2, 0, 8}); math.Abs(got-4) > 1e-12 {
		t.Fatalf("GeoMean skipping zeros = %v, want 4", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Fatalf("GeoMean(nil) = %v, want 0", got)
	}
}

func TestWelchIdenticalGroups(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	res := WelchTTest(a, a)
	if res.P < 0.99 {
		t.Fatalf("identical groups p = %v, want ~1", res.P)
	}
}

func TestWelchClearlyDifferentGroups(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := make([]float64, 30)
	b := make([]float64, 30)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64() + 10
	}
	res := WelchTTest(a, b)
	if res.P > 1e-6 {
		t.Fatalf("clearly different groups p = %v, want ~0", res.P)
	}
	if res.T >= 0 {
		t.Fatalf("T = %v, want negative (a < b)", res.T)
	}
}

func TestWelchDegenerateInputs(t *testing.T) {
	if res := WelchTTest([]float64{1}, []float64{1, 2, 3}); res.P != 1 {
		t.Fatalf("tiny group p = %v, want 1", res.P)
	}
	// Two distinct constant groups: zero variance, infinite t.
	res := WelchTTest([]float64{2, 2, 2}, []float64{5, 5, 5})
	if res.P != 0 {
		t.Fatalf("constant distinct groups p = %v, want 0", res.P)
	}
	// Same constant groups.
	res = WelchTTest([]float64{2, 2, 2}, []float64{2, 2, 2})
	if res.P != 1 {
		t.Fatalf("same constant groups p = %v, want 1", res.P)
	}
}

func TestWelchFalsePositiveRate(t *testing.T) {
	// Under the null, p-values should be roughly uniform: count p < 0.05.
	rng := rand.New(rand.NewSource(17))
	const reps = 2000
	rejected := 0
	for r := 0; r < reps; r++ {
		a := make([]float64, 20)
		b := make([]float64, 20)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		if WelchTTest(a, b).P < 0.05 {
			rejected++
		}
	}
	rate := float64(rejected) / reps
	if rate < 0.02 || rate > 0.09 {
		t.Fatalf("null rejection rate = %v, want ~0.05", rate)
	}
}

func TestBonferroni(t *testing.T) {
	if got := Bonferroni(0.05, 10); got != 0.005 {
		t.Fatalf("Bonferroni = %v, want 0.005", got)
	}
	if got := Bonferroni(0.05, 0); got != 0.05 {
		t.Fatalf("Bonferroni(m=0) = %v, want 0.05", got)
	}
}

func TestRegret(t *testing.T) {
	err := []float64{2, 2}
	oracle := []float64{1, 2}
	// ratios {2, 1}; geomean = sqrt(2)
	if got := Regret(err, oracle); math.Abs(got-math.Sqrt2) > 1e-12 {
		t.Fatalf("Regret = %v, want sqrt(2)", got)
	}
}

func TestRegretAtLeastOneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		err := make([]float64, n)
		oracle := make([]float64, n)
		for i := range err {
			oracle[i] = rng.Float64() + 0.01
			err[i] = oracle[i] * (1 + rng.Float64())
		}
		return Regret(err, oracle) >= 1-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegretPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Regret([]float64{1}, []float64{1, 2})
}

func TestRegIncBetaBounds(t *testing.T) {
	if got := RegIncBeta(2, 3, 0); got != 0 {
		t.Fatalf("I_0 = %v, want 0", got)
	}
	if got := RegIncBeta(2, 3, 1); got != 1 {
		t.Fatalf("I_1 = %v, want 1", got)
	}
}

func TestRegIncBetaKnownValues(t *testing.T) {
	// I_x(1, 1) = x (uniform CDF).
	for _, x := range []float64{0.1, 0.33, 0.7, 0.95} {
		if got := RegIncBeta(1, 1, x); math.Abs(got-x) > 1e-10 {
			t.Fatalf("I_%v(1,1) = %v, want %v", x, got, x)
		}
	}
	// I_x(2, 2) = 3x^2 - 2x^3.
	for _, x := range []float64{0.2, 0.5, 0.8} {
		want := 3*x*x - 2*x*x*x
		if got := RegIncBeta(2, 2, x); math.Abs(got-want) > 1e-10 {
			t.Fatalf("I_%v(2,2) = %v, want %v", x, got, want)
		}
	}
}

func TestRegIncBetaMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := 0.5 + 5*rng.Float64()
		b := 0.5 + 5*rng.Float64()
		x1 := rng.Float64()
		x2 := rng.Float64()
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		return RegIncBeta(a, b, x1) <= RegIncBeta(a, b, x2)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStudentTKnownQuantile(t *testing.T) {
	// For df=10, |t|=2.228 is the 0.05 two-sided critical value.
	res := WelchTTest(
		[]float64{0.9, 1.1, 1.0, 0.95, 1.05, 1.02},
		[]float64{0.9, 1.1, 1.0, 0.95, 1.05, 1.02},
	)
	if res.P < 0.99 {
		t.Fatalf("p = %v, want ~1", res.P)
	}
	// Directly exercise the t CDF through RegIncBeta: for df=1 (Cauchy),
	// P(|T| > 1) = 0.5.
	p := RegIncBeta(0.5, 0.5, 1/(1+1.0))
	if math.Abs(p-0.5) > 1e-9 {
		t.Fatalf("Cauchy two-sided p at t=1: %v, want 0.5", p)
	}
}

func TestPercentileSortedMatchesPercentile(t *testing.T) {
	xs := []float64{9, 1, 4, 7, 2, 8, 3}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for _, p := range []float64{-5, 0, 10, 50, 77.7, 95, 100, 140} {
		if got, want := PercentileSorted(sorted, p), Percentile(xs, p); got != want {
			t.Fatalf("PercentileSorted(%v) = %v, Percentile = %v", p, got, want)
		}
	}
	if got := PercentileSorted(nil, 50); got != 0 {
		t.Fatalf("PercentileSorted(nil) = %v, want 0", got)
	}
}

func TestScratchPercentile(t *testing.T) {
	var sc Scratch
	xs := []float64{5, 1, 3}
	for i := 0; i < 3; i++ {
		if got, want := sc.Percentile(xs, 50), Percentile(xs, 50); got != want {
			t.Fatalf("Scratch.Percentile = %v, want %v", got, want)
		}
	}
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatal("Scratch.Percentile mutated its input")
	}
	// After warm-up the scratch must not allocate for same-size inputs.
	if allocs := testing.AllocsPerRun(50, func() { sc.Percentile(xs, 95) }); allocs != 0 {
		t.Fatalf("Scratch.Percentile allocates %v per call, want 0", allocs)
	}
}
