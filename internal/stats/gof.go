package stats

import (
	"math"
	"sort"
)

// Goodness-of-fit statistics for the sampler family's distributional tests:
// the fast table-accelerated samplers must match the reference distributions
// (Laplace, Gumbel, two-sided geometric) not just in moments but across the
// whole CDF, so the test suite pins them with one-sample Kolmogorov-Smirnov
// (continuous) and Pearson chi-square (discrete) checks at fixed seeds.

// KSStatistic returns the one-sample Kolmogorov-Smirnov statistic
// D = sup_x |F_n(x) - F(x)| between the empirical CDF of the sample and the
// hypothesized continuous CDF. The sample is copied and sorted; an empty
// sample yields 0.
func KSStatistic(sample []float64, cdf func(float64) float64) float64 {
	n := len(sample)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	var d float64
	for i, x := range s {
		f := cdf(x)
		// The empirical CDF steps from i/n to (i+1)/n at x; the supremum
		// over the step interval is attained at one of the two edges.
		if hi := float64(i+1)/float64(n) - f; hi > d {
			d = hi
		}
		if lo := f - float64(i)/float64(n); lo > d {
			d = lo
		}
	}
	return d
}

// KSCriticalValue returns the asymptotic level-alpha critical value for the
// one-sample KS statistic, sqrt(-ln(alpha/2)/2) / sqrt(n): for n draws from
// the hypothesized distribution, P(D > critical) -> alpha as n grows. NaN
// for a non-positive n or an alpha outside (0, 1).
func KSCriticalValue(n int, alpha float64) float64 {
	if n <= 0 || alpha <= 0 || alpha >= 1 {
		return math.NaN()
	}
	return math.Sqrt(-math.Log(alpha/2) / 2 / float64(n))
}

// ChiSquareStatistic returns Pearson's X-squared = sum (obs-exp)^2 / exp
// over the bins. Mismatched lengths or a bin with non-positive expectation
// yield NaN (merge sparse tail bins before calling).
func ChiSquareStatistic(observed, expected []float64) float64 {
	if len(observed) != len(expected) {
		return math.NaN()
	}
	var x2 float64
	for i, o := range observed {
		e := expected[i]
		if e <= 0 {
			return math.NaN()
		}
		d := o - e
		x2 += d * d / e
	}
	return x2
}

// ChiSquareCriticalValue returns the level-alpha critical value of the
// chi-square distribution with df degrees of freedom via the Wilson-Hilferty
// cube approximation (relative error well under 1% for df >= 5, the regime
// every caller's binning produces). NaN for a non-positive df or an alpha
// outside (0, 1).
func ChiSquareCriticalValue(df int, alpha float64) float64 {
	if df <= 0 || alpha <= 0 || alpha >= 1 {
		return math.NaN()
	}
	z := NormalQuantile(1 - alpha)
	k := float64(df)
	t := 1 - 2/(9*k) + z*math.Sqrt(2/(9*k))
	return k * t * t * t
}

// NormalQuantile returns the standard normal inverse CDF at p in (0, 1),
// using Acklam's rational approximation (absolute error < 1.2e-9 across the
// whole interval). NaN outside (0, 1).
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		return math.NaN()
	}
	// Coefficients of Acklam's approximation: a rational minimax fit in the
	// central region with matched tail expansions in log space.
	var (
		a = [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
			1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
		b = [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
			6.680131188771972e+01, -1.328068155288572e+01}
		c = [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
			-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
		d = [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
			3.754408661907416e+00}
	)
	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}
