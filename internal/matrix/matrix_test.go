package matrix

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"dpbench/internal/transform"
)

func TestDenseBasics(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatal("Set/At broken")
	}
	out := m.MulVec([]float64{1, 1, 1})
	if out[0] != 0 || out[1] != 7 {
		t.Fatalf("MulVec = %v", out)
	}
}

func TestNewDensePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDense(0, 3)
}

func TestMulVecMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDense(2, 3).MulVec([]float64{1})
}

func TestTransposeMulVec(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 3)
	m.Set(1, 1, 4)
	out := m.TransposeMulVec([]float64{1, 1})
	if out[0] != 4 || out[1] != 6 {
		t.Fatalf("TransposeMulVec = %v", out)
	}
}

func TestGramSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewDense(5, 3)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	g := m.Gram()
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			if math.Abs(g.At(a, b)-g.At(b, a)) > 1e-12 {
				t.Fatal("Gram not symmetric")
			}
			// Compare against direct computation.
			var want float64
			for i := 0; i < 5; i++ {
				want += m.At(i, a) * m.At(i, b)
			}
			if math.Abs(g.At(a, b)-want) > 1e-9 {
				t.Fatalf("Gram[%d][%d] = %v, want %v", a, b, g.At(a, b), want)
			}
		}
	}
}

func TestSensitivity(t *testing.T) {
	if got := IdentityStrategy(4).Sensitivity(); got != 1 {
		t.Fatalf("identity sensitivity = %v", got)
	}
	// Binary hierarchy over n=4: each cell appears in 3 rows (cell, pair,
	// root), so sensitivity is 3.
	if got := HierarchicalStrategy(4, 2).Sensitivity(); got != 3 {
		t.Fatalf("hierarchical sensitivity = %v, want 3", got)
	}
}

func TestHaarStrategyUnitSensitivity(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 32} {
		s, err := HaarStrategy(n)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.Sensitivity(); math.Abs(got-1) > 1e-9 {
			t.Fatalf("n=%d: Haar sensitivity %v, want 1", n, got)
		}
	}
	if _, err := HaarStrategy(3); err == nil {
		t.Fatal("expected error for non-power-of-two")
	}
}

func TestHaarStrategyMatchesTransform(t *testing.T) {
	// The strategy matrix must compute exactly transform.HaarForward.
	n := 16
	s, err := HaarStrategy(n)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64() * 10
	}
	got := s.MulVec(x)
	want, err := transform.HaarForward(x)
	if err != nil {
		t.Fatal(err)
	}
	// HaarForward lays out coefficients in level order starting with the
	// average; the strategy uses the same order.
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("coefficient %d: strategy %v, transform %v", i, got[i], want[i])
		}
	}
}

func TestCholeskySolve(t *testing.T) {
	// G = [[4,2],[2,3]], b = [2, 5] -> z = [-0.5, 2].
	g := NewDense(2, 2)
	g.Set(0, 0, 4)
	g.Set(0, 1, 2)
	g.Set(1, 0, 2)
	g.Set(1, 1, 3)
	z, err := CholeskySolve(g, []float64{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(z[0]+0.5) > 1e-9 || math.Abs(z[1]-2) > 1e-9 {
		t.Fatalf("solution %v, want [-0.5, 2]", z)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	g := NewDense(2, 2)
	g.Set(0, 0, 1)
	g.Set(1, 1, -1)
	if _, err := CholeskySolve(g, []float64{1, 1}); err == nil {
		t.Fatal("expected positive-definite error")
	}
}

func TestMechanismRecoversDataAtHugeBudget(t *testing.T) {
	for _, strat := range []*Dense{IdentityStrategy(8), HierarchicalStrategy(8, 2)} {
		mm, err := NewMechanism(strat)
		if err != nil {
			t.Fatal(err)
		}
		x := []float64{5, 3, 8, 1, 0, 9, 2, 7}
		est, err := mm.Run(x, 1e9, rand.New(rand.NewSource(3)))
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if math.Abs(est[i]-x[i]) > 1e-3 {
				t.Fatalf("cell %d: %v want %v", i, est[i], x[i])
			}
		}
	}
}

func TestMechanismRejectsBadInputs(t *testing.T) {
	mm, _ := NewMechanism(IdentityStrategy(4))
	if _, err := mm.Run([]float64{1, 2, 3}, 1, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("expected size error")
	}
	if _, err := mm.Run([]float64{1, 2, 3, 4}, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("expected epsilon error")
	}
	wide := NewDense(2, 4)
	if _, err := NewMechanism(wide); err == nil {
		t.Fatal("expected rank error for wide strategy")
	}
}

func TestIdentityExpectedVariance(t *testing.T) {
	// Identity strategy: per-cell variance is exactly 2/eps^2.
	mm, _ := NewMechanism(IdentityStrategy(6))
	vars, err := mm.ExpectedCellVariances(0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 / (0.5 * 0.5)
	for i, v := range vars {
		if math.Abs(v-want) > 1e-9 {
			t.Fatalf("cell %d variance %v, want %v", i, v, want)
		}
	}
}

func TestHierarchicalVarianceBelowIdentityForTotal(t *testing.T) {
	// The whole point of the matrix mechanism: a strategy can trade
	// per-cell variance for range-query variance. Verify empirically that
	// the hierarchical estimator's total-sum variance is below identity's
	// at the same eps.
	n := 64
	eps := 0.2
	x := make([]float64, n)
	hier, _ := NewMechanism(HierarchicalStrategy(n, 2))
	ident, _ := NewMechanism(IdentityStrategy(n))
	rng := rand.New(rand.NewSource(4))
	const trials = 200
	var hVar, iVar float64
	for trial := 0; trial < trials; trial++ {
		he, err := hier.Run(x, eps, rng)
		if err != nil {
			t.Fatal(err)
		}
		ie, err := ident.Run(x, eps, rng)
		if err != nil {
			t.Fatal(err)
		}
		var hs, is float64
		for i := 0; i < n; i++ {
			hs += he[i]
			is += ie[i]
		}
		hVar += hs * hs
		iVar += is * is
	}
	if hVar >= iVar {
		t.Fatalf("hierarchical total variance %v not below identity %v", hVar/trials, iVar/trials)
	}
}

func TestMechanismUnbiasedProperty(t *testing.T) {
	// Least-squares reconstruction of full-rank strategies is unbiased:
	// with zero noise (huge eps) the estimate equals x for random data.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		strat := HierarchicalStrategy(n, 2+rng.Intn(3))
		mm, err := NewMechanism(strat)
		if err != nil {
			return false
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = float64(rng.Intn(100))
		}
		est, err := mm.Run(x, 1e9, rng)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(est[i]-x[i]) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMulVecIntoMatchesMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := NewDense(5, 7)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	x := make([]float64, 7)
	y := make([]float64, 5)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	dst := make([]float64, 5)
	for i := range dst {
		dst[i] = 999 // stale values must be overwritten
	}
	got := m.MulVecInto(dst, x)
	want := m.MulVec(x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MulVecInto[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	dstT := make([]float64, 7)
	for i := range dstT {
		dstT[i] = -999
	}
	gotT := m.TransposeMulVecInto(dstT, y)
	wantT := m.TransposeMulVec(y)
	for i := range wantT {
		if gotT[i] != wantT[i] {
			t.Fatalf("TransposeMulVecInto[%d] = %v, want %v", i, gotT[i], wantT[i])
		}
	}
	if allocs := testing.AllocsPerRun(50, func() {
		m.MulVecInto(dst, x)
		m.TransposeMulVecInto(dstT, y)
	}); allocs != 0 {
		t.Fatalf("into-buffer variants allocate %v per call, want 0", allocs)
	}
}

func TestSolveFactoredMatchesCholeskySolve(t *testing.T) {
	strat := HierarchicalStrategy(9, 3)
	g := strat.Gram()
	b := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5}
	want, err := CholeskySolve(g, b)
	if err != nil {
		t.Fatal(err)
	}
	L, err := CholeskyFactor(g)
	if err != nil {
		t.Fatal(err)
	}
	z := make([]float64, len(b))
	fwd := make([]float64, len(b))
	SolveFactored(L, b, z, fwd)
	for i := range want {
		if z[i] != want[i] {
			t.Fatalf("SolveFactored[%d] = %v, want %v (bitwise)", i, z[i], want[i])
		}
	}
	if allocs := testing.AllocsPerRun(20, func() { SolveFactored(L, b, z, fwd) }); allocs != 0 {
		t.Fatalf("SolveFactored allocates %v per call, want 0", allocs)
	}
}

func TestMechanismConcurrentRuns(t *testing.T) {
	// The cached factor and scratch pool must be safe under the concurrent
	// Runs the parallel experiment runner performs.
	mm, err := NewMechanism(HierarchicalStrategy(32, 2))
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 32)
	for i := range x {
		x[i] = float64(i)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for trial := 0; trial < 20; trial++ {
				if _, err := mm.Run(x, 1, rng); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
