// Package matrix implements the matrix mechanism of Li et al. (PODS 2010 /
// VLDBJ 2015), the generic framework the paper uses to unify every
// data-independent algorithm it evaluates (Section 3.1): select a strategy
// matrix S of linear queries, measure Sx under Laplace noise calibrated to
// S's sensitivity, and reconstruct workload answers by least squares. The
// package provides dense matrices, the pseudo-inverse reconstruction, exact
// expected-error computation (used for the analytical comparisons in
// EXPERIMENTS.md), and the strategy matrices of the hierarchical and wavelet
// mechanisms so their matrix-mechanism equivalence is testable.
package matrix

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"dpbench/internal/noise"
)

// Dense is a dense row-major matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// NewDense returns a zero rows x cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("matrix: invalid shape %dx%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set writes element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// MulVec computes m * x into a fresh slice.
func (m *Dense) MulVec(x []float64) []float64 {
	return m.MulVecInto(make([]float64, m.Rows), x)
}

// MulVecInto computes m * x into dst (len m.Rows) and returns it, allocating
// nothing. dst may hold stale values; it is fully overwritten.
func (m *Dense) MulVecInto(dst, x []float64) []float64 {
	if len(x) != m.Cols {
		panic("matrix: MulVec dimension mismatch")
	}
	if len(dst) != m.Rows {
		panic("matrix: MulVecInto destination length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
	return dst
}

// TransposeMulVec computes m^T * y into a fresh slice.
func (m *Dense) TransposeMulVec(y []float64) []float64 {
	return m.TransposeMulVecInto(make([]float64, m.Cols), y)
}

// TransposeMulVecInto computes m^T * y into dst (len m.Cols) and returns it,
// allocating nothing. dst is zeroed first, so it may hold stale values.
func (m *Dense) TransposeMulVecInto(dst, y []float64) []float64 {
	if len(y) != m.Rows {
		panic("matrix: TransposeMulVec dimension mismatch")
	}
	if len(dst) != m.Cols {
		panic("matrix: TransposeMulVecInto destination length mismatch")
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		yi := y[i]
		if yi == 0 {
			continue
		}
		for j, v := range row {
			dst[j] += v * yi
		}
	}
	return dst
}

// Gram computes m^T * m (Cols x Cols).
func (m *Dense) Gram() *Dense {
	g := NewDense(m.Cols, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for a := 0; a < m.Cols; a++ {
			va := row[a]
			if va == 0 {
				continue
			}
			for b := a; b < m.Cols; b++ {
				g.Data[a*m.Cols+b] += va * row[b]
			}
		}
	}
	// Mirror the upper triangle.
	for a := 0; a < m.Cols; a++ {
		for b := 0; b < a; b++ {
			g.Data[a*m.Cols+b] = g.Data[b*m.Cols+a]
		}
	}
	return g
}

// Sensitivity returns the L1 sensitivity of the strategy: the maximum column
// L1 norm (one record changes one cell count by 1, perturbing each strategy
// answer by the corresponding column entry).
func (m *Dense) Sensitivity() float64 {
	var best float64
	for j := 0; j < m.Cols; j++ {
		var s float64
		for i := 0; i < m.Rows; i++ {
			s += math.Abs(m.At(i, j))
		}
		if s > best {
			best = s
		}
	}
	return best
}

// Solver is a factored SPD system G = L L^T with reusable solve scratch:
// factor once, then Solve any number of right-hand sides with zero
// allocations per call. It replaces the factor-per-call pattern of the old
// CholeskySolve for any caller that hits the same system repeatedly
// (Mechanism caches one internally for its trial loop).
type Solver struct {
	L   *Dense
	fwd []float64
}

// NewSolver factors the SPD matrix g.
func NewSolver(g *Dense) (*Solver, error) {
	L, err := CholeskyFactor(g)
	if err != nil {
		return nil, err
	}
	return &Solver{L: L, fwd: make([]float64, g.Rows)}, nil
}

// Solve writes the solution of G z = b into z (len g.Rows) and returns it; a
// nil z allocates. The Solver's internal scratch makes this not safe for
// concurrent use; share the factor L via SolveFactored with per-caller
// scratch instead.
func (s *Solver) Solve(b, z []float64) []float64 {
	if z == nil {
		z = make([]float64, s.L.Rows)
	}
	SolveFactored(s.L, b, z, s.fwd)
	return z
}

// CholeskySolve solves the SPD system G z = b via Cholesky factorization.
// G must be symmetric positive definite (true for S^T S when S has full
// column rank). It factors per call — one-shot use only; repeated solves
// against the same G should hold a Solver (or a Mechanism, which caches its
// strategy's factor across trials).
func CholeskySolve(g *Dense, b []float64) ([]float64, error) {
	if len(b) != g.Rows {
		return nil, fmt.Errorf("matrix: CholeskySolve shape mismatch")
	}
	s, err := NewSolver(g)
	if err != nil {
		return nil, err
	}
	return s.Solve(b, nil), nil
}

// CholeskyFactor computes the lower-triangular factor L with G = L L^T.
func CholeskyFactor(g *Dense) (*Dense, error) {
	n := g.Rows
	if g.Cols != n {
		return nil, fmt.Errorf("matrix: CholeskyFactor shape mismatch")
	}
	L := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := g.At(i, j)
			for k := 0; k < j; k++ {
				sum -= L.At(i, k) * L.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("matrix: not positive definite at %d (pivot %v)", i, sum)
				}
				L.Set(i, j, math.Sqrt(sum))
			} else {
				L.Set(i, j, sum/L.At(j, j))
			}
		}
	}
	return L, nil
}

// SolveFactored solves L L^T z = b given the Cholesky factor L, writing the
// solution into z using fwd (both len n) as the forward-substitution
// scratch. It allocates nothing; z and fwd may alias b only if the caller no
// longer needs b.
func SolveFactored(L *Dense, b, z, fwd []float64) {
	n := L.Rows
	if len(b) != n || len(z) != n || len(fwd) != n {
		panic("matrix: SolveFactored length mismatch")
	}
	// Forward substitution L y = b.
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= L.At(i, k) * fwd[k]
		}
		fwd[i] = sum / L.At(i, i)
	}
	// Back substitution L^T z = y.
	for i := n - 1; i >= 0; i-- {
		sum := fwd[i]
		for k := i + 1; k < n; k++ {
			sum -= L.At(k, i) * z[k]
		}
		z[i] = sum / L.At(i, i)
	}
}

// Mechanism is one instance of the matrix mechanism: a strategy matrix with
// full column rank over an n-cell domain. The Cholesky factor of the Gram
// matrix and the strategy sensitivity are computed once on first use and
// shared by every Run, so repeated trials pay two triangular solves instead
// of a fresh O(n^3) factorization; per-trial scratch vectors come from an
// internal pool, keeping concurrent Runs safe and allocation-light.
type Mechanism struct {
	Strategy *Dense
	gram     *Dense

	once    sync.Once
	chol    *Dense
	cholErr error
	sens    float64
	scratch sync.Pool // *mechScratch
}

// mechScratch holds one trial's intermediate vectors.
type mechScratch struct {
	y   []float64 // noisy strategy answers (len Rows)
	b   []float64 // S^T y (len Cols)
	fwd []float64 // forward-substitution temp (len Cols)
}

// NewMechanism validates and prepares a strategy.
func NewMechanism(strategy *Dense) (*Mechanism, error) {
	if strategy.Rows < strategy.Cols {
		return nil, fmt.Errorf("matrix: strategy must have at least as many rows as columns")
	}
	return &Mechanism{Strategy: strategy, gram: strategy.Gram()}, nil
}

// prepare computes the cached Cholesky factor and sensitivity exactly once.
func (mm *Mechanism) prepare() error {
	mm.once.Do(func() {
		mm.sens = mm.Strategy.Sensitivity()
		mm.chol, mm.cholErr = CholeskyFactor(mm.gram)
	})
	return mm.cholErr
}

// Run measures Sx under Laplace noise calibrated to the strategy sensitivity
// and reconstructs the least-squares cell estimate
// x-hat = (S^T S)^{-1} S^T (Sx + noise) into a fresh slice.
func (mm *Mechanism) Run(x []float64, eps float64, rng *rand.Rand) ([]float64, error) {
	out := make([]float64, mm.Strategy.Cols)
	if err := mm.RunInto(out, x, eps, rng); err != nil {
		return nil, err
	}
	return out, nil
}

// RunInto is Run writing the estimate into a caller-provided buffer (len
// Strategy.Cols), so a trial loop over one strategy performs no per-trial
// allocations at all: the factor is cached, the intermediates pooled.
func (mm *Mechanism) RunInto(out, x []float64, eps float64, rng *rand.Rand) error {
	if eps <= 0 {
		return fmt.Errorf("matrix: non-positive epsilon")
	}
	if len(x) != mm.Strategy.Cols {
		return fmt.Errorf("matrix: data has %d cells, strategy expects %d", len(x), mm.Strategy.Cols)
	}
	if len(out) != mm.Strategy.Cols {
		return fmt.Errorf("matrix: output has %d cells, strategy expects %d", len(out), mm.Strategy.Cols)
	}
	if err := mm.prepare(); err != nil {
		return err
	}
	sc, _ := mm.scratch.Get().(*mechScratch)
	if sc == nil {
		sc = &mechScratch{
			y:   make([]float64, mm.Strategy.Rows),
			b:   make([]float64, mm.Strategy.Cols),
			fwd: make([]float64, mm.Strategy.Cols),
		}
	}
	defer mm.scratch.Put(sc)
	y := mm.Strategy.MulVecInto(sc.y, x)
	for i := range y {
		y[i] += noise.Laplace(rng, mm.sens/eps)
	}
	b := mm.Strategy.TransposeMulVecInto(sc.b, y)
	SolveFactored(mm.chol, b, out, sc.fwd)
	return nil
}

// ExpectedCellVariances returns the exact per-cell variance of the estimator
// at budget eps: diag((S^T S)^{-1}) * 2 * (sens/eps)^2. This is the
// analytical error the paper's data-independent analysis relies on ("the
// error for this class of techniques is well-understood").
func (mm *Mechanism) ExpectedCellVariances(eps float64) ([]float64, error) {
	if err := mm.prepare(); err != nil {
		return nil, err
	}
	n := mm.Strategy.Cols
	noiseVar := 2 * mm.sens * mm.sens / (eps * eps)
	out := make([]float64, n)
	// Solve G z = e_j per column to read diag(G^{-1}).
	e := make([]float64, n)
	z := make([]float64, n)
	fwd := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		SolveFactored(mm.chol, e, z, fwd)
		out[j] = z[j] * noiseVar
	}
	return out, nil
}

// IdentityStrategy returns the n x n identity strategy (the IDENTITY
// baseline as a matrix mechanism).
func IdentityStrategy(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// HierarchicalStrategy returns the strategy of the H mechanism: one row per
// node of a b-ary interval tree over n cells, each row the indicator of the
// node's interval.
func HierarchicalStrategy(n, b int) *Dense {
	type span struct{ lo, hi int }
	var spans []span
	var rec func(lo, hi int)
	rec = func(lo, hi int) {
		spans = append(spans, span{lo, hi})
		if hi-lo <= 1 {
			return
		}
		chunks := b
		if hi-lo < b {
			chunks = hi - lo
		}
		start := lo
		for i := 0; i < chunks; i++ {
			end := lo + (hi-lo)*(i+1)/chunks
			if end > start {
				rec(start, end)
				start = end
			}
		}
	}
	rec(0, n)
	m := NewDense(len(spans), n)
	for i, s := range spans {
		for j := s.lo; j < s.hi; j++ {
			m.Set(i, j, 1)
		}
	}
	return m
}

// HaarStrategy returns the average-normalized Haar wavelet strategy used by
// this repository's Privelet implementation (n must be a power of two).
func HaarStrategy(n int) (*Dense, error) {
	if n == 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("matrix: Haar strategy needs power-of-two n, got %d", n)
	}
	m := NewDense(n, n)
	// Row 0: overall average.
	for j := 0; j < n; j++ {
		m.Set(0, j, 1/float64(n))
	}
	row := 1
	for size := n; size >= 2; size /= 2 {
		for lo := 0; lo+size <= n; lo += size {
			half := size / 2
			for j := lo; j < lo+half; j++ {
				m.Set(row, j, 1/float64(size))
			}
			for j := lo + half; j < lo+size; j++ {
				m.Set(row, j, -1/float64(size))
			}
			row++
		}
	}
	return m, nil
}
