package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"dpbench/internal/noise"
)

func testServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func smallConfig() Config {
	return Config{
		Datasets:   []string{"ADULT"},
		Mechanisms: []string{"IDENTITY", "DAWA"},
		Epsilons:   []float64{0.1},
		Domain1D:   256,
		Scale:      10_000,
		Seed:       42,
		KeyBudget:  0.5,
		// Tests pin noise seeds for reproducibility; production servers
		// leave this off and reject seeded requests.
		AllowSeededQueries: true,
	}
}

func postQuery(t testing.TB, s *Server, body any) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatalf("encoding request: %v", err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/query", &buf)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

func decodeResponse(t testing.TB, rec *httptest.ResponseRecorder) QueryResponse {
	t.Helper()
	var resp QueryResponse
	if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp
}

func TestServeQueryHappyPath(t *testing.T) {
	s := testServer(t, smallConfig())
	req := QueryRequest{
		Key: "alice", Dataset: "ADULT", Mechanism: "DAWA", Epsilon: 0.1,
		Ranges: []Range{{Lo: 0, Hi: 255}, {Lo: 0, Hi: 127}, {Lo: 128, Hi: 255}},
		Seed:   7,
	}
	rec := postQuery(t, s, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200; body: %s", rec.Code, rec.Body)
	}
	resp := decodeResponse(t, rec)
	if len(resp.Answers) != 3 {
		t.Fatalf("got %d answers, want 3", len(resp.Answers))
	}
	// The full-domain count should be near the true scale (eps=0.1 noise on
	// 10k tuples), and the two halves must sum to the whole up to float
	// reassociation — answers are prefix-sum post-processing of one release.
	if math.Abs(resp.Answers[0]-10_000) > 5_000 {
		t.Errorf("full-domain answer %v implausibly far from scale 10000", resp.Answers[0])
	}
	if diff := math.Abs(resp.Answers[0] - (resp.Answers[1] + resp.Answers[2])); diff > 1e-6 {
		t.Errorf("halves do not sum to whole: %v + %v vs %v", resp.Answers[1], resp.Answers[2], resp.Answers[0])
	}
	if resp.Spent != 0.1 || math.Abs(resp.Remaining-0.4) > 1e-12 {
		t.Errorf("ledger spent=%v remaining=%v, want 0.1/0.4", resp.Spent, resp.Remaining)
	}

	// A pinned seed makes the release reproducible: a fresh key re-issuing
	// the same request gets bit-identical answers.
	req.Key = "bob"
	again := decodeResponse(t, postQuery(t, s, req))
	for i := range resp.Answers {
		if resp.Answers[i] != again.Answers[i] {
			t.Fatalf("answer %d not reproducible for pinned seed: %v vs %v", i, resp.Answers[i], again.Answers[i])
		}
	}
}

func TestServeBudgetExhaustionReturns429(t *testing.T) {
	cfg := smallConfig()
	cfg.KeyBudget = 0.25 // affords two eps=0.1 queries, not three
	s := testServer(t, cfg)
	req := QueryRequest{
		Key: "alice", Dataset: "ADULT", Mechanism: "IDENTITY", Epsilon: 0.1,
		Ranges: []Range{{Lo: 0, Hi: 10}},
	}
	for i := 0; i < 2; i++ {
		if rec := postQuery(t, s, req); rec.Code != http.StatusOK {
			t.Fatalf("query %d: status %d, want 200; body: %s", i, rec.Code, rec.Body)
		}
	}
	rec := postQuery(t, s, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("overspending query: status %d, want 429; body: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "budget exhausted") {
		t.Errorf("429 body should name the exhausted budget, got: %s", rec.Body)
	}

	// The refused request must not have charged the ledger.
	breq := httptest.NewRequest(http.MethodGet, "/v1/budget?key=alice", nil)
	brec := httptest.NewRecorder()
	s.Handler().ServeHTTP(brec, breq)
	var budget BudgetResponse
	if err := json.NewDecoder(brec.Body).Decode(&budget); err != nil {
		t.Fatalf("decoding budget: %v", err)
	}
	if math.Abs(budget.Spent-0.2) > 1e-12 {
		t.Errorf("spent = %v after a refused query, want 0.2", budget.Spent)
	}

	// Other keys are unaffected: budgets are per key, not global.
	req.Key = "bob"
	if rec := postQuery(t, s, req); rec.Code != http.StatusOK {
		t.Errorf("fresh key after another's exhaustion: status %d, want 200; body: %s", rec.Code, rec.Body)
	}
}

func TestServeMalformedRequestsRejected(t *testing.T) {
	s := testServer(t, smallConfig())
	cases := []struct {
		name string
		body any
		want int
	}{
		{"missing key", QueryRequest{Dataset: "ADULT", Mechanism: "DAWA", Epsilon: 0.1, Ranges: []Range{{0, 1}}}, http.StatusBadRequest},
		{"unknown cell", QueryRequest{Key: "k", Dataset: "ADULT", Mechanism: "NOPE", Epsilon: 0.1, Ranges: []Range{{0, 1}}}, http.StatusNotFound},
		{"unconfigured epsilon", QueryRequest{Key: "k", Dataset: "ADULT", Mechanism: "DAWA", Epsilon: 0.5, Ranges: []Range{{0, 1}}}, http.StatusNotFound},
		{"no queries", QueryRequest{Key: "k", Dataset: "ADULT", Mechanism: "DAWA", Epsilon: 0.1}, http.StatusBadRequest},
		{"inverted range", QueryRequest{Key: "k", Dataset: "ADULT", Mechanism: "DAWA", Epsilon: 0.1, Ranges: []Range{{10, 5}}}, http.StatusBadRequest},
		{"out of domain", QueryRequest{Key: "k", Dataset: "ADULT", Mechanism: "DAWA", Epsilon: 0.1, Ranges: []Range{{0, 256}}}, http.StatusBadRequest},
		{"rects on 1D", QueryRequest{Key: "k", Dataset: "ADULT", Mechanism: "DAWA", Epsilon: 0.1, Rects: []Rect{{0, 0, 1, 1}}}, http.StatusBadRequest},
		{"unknown field", map[string]any{"key": "k", "nope": 1}, http.StatusBadRequest},
		{"not json", "}{", http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := postQuery(t, s, tc.body)
			if rec.Code != tc.want {
				t.Errorf("status = %d, want %d; body: %s", rec.Code, tc.want, rec.Body)
			}
			// A rejected request never spends budget.
			if rec.Code != http.StatusOK && tc.name != "missing key" {
				breq := httptest.NewRequest(http.MethodGet, "/v1/budget?key=k", nil)
				brec := httptest.NewRecorder()
				s.Handler().ServeHTTP(brec, breq)
				var budget BudgetResponse
				_ = json.NewDecoder(brec.Body).Decode(&budget)
				if budget.Spent != 0 {
					t.Errorf("rejected request charged the ledger: spent = %v", budget.Spent)
				}
			}
		})
	}
}

func TestServe2DRects(t *testing.T) {
	s := testServer(t, Config{
		Datasets:   []string{"GOWALLA"},
		Mechanisms: []string{"UGRID"},
		Epsilons:   []float64{0.2},
		Side2D:     32,
		Scale:      20_000,
		Seed:       3,
		KeyBudget:  1,

		AllowSeededQueries: true,
	})
	req := QueryRequest{
		Key: "carol", Dataset: "GOWALLA", Mechanism: "UGRID", Epsilon: 0.2,
		Rects: []Rect{{Y0: 0, X0: 0, Y1: 31, X1: 31}, {Y0: 4, X0: 4, Y1: 10, X1: 20}},
		Seed:  11,
	}
	rec := postQuery(t, s, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200; body: %s", rec.Code, rec.Body)
	}
	resp := decodeResponse(t, rec)
	if len(resp.Answers) != 2 {
		t.Fatalf("got %d answers, want 2", len(resp.Answers))
	}
	if math.Abs(resp.Answers[0]-20_000) > 10_000 {
		t.Errorf("full-grid answer %v implausibly far from scale 20000", resp.Answers[0])
	}
}

// TestServeSeededQueriesRejectedByDefault pins the production posture: a
// client-pinned noise stream makes a release denoisable, so without
// AllowSeededQueries the request is refused before any budget is charged.
func TestServeSeededQueriesRejectedByDefault(t *testing.T) {
	cfg := smallConfig()
	cfg.AllowSeededQueries = false
	s := testServer(t, cfg)
	req := QueryRequest{
		Key: "alice", Dataset: "ADULT", Mechanism: "IDENTITY", Epsilon: 0.1,
		Ranges: []Range{{Lo: 0, Hi: 10}}, Seed: 7,
	}
	rec := postQuery(t, s, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("seeded query: status %d, want 400; body: %s", rec.Code, rec.Body)
	}
	if got := s.lookupSpent("alice"); got != 0 {
		t.Errorf("refused seeded query charged the ledger: spent %v", got)
	}
	// The unseeded form of the same request is served.
	req.Seed = 0
	if rec := postQuery(t, s, req); rec.Code != http.StatusOK {
		t.Errorf("unseeded query: status %d, want 200; body: %s", rec.Code, rec.Body)
	}
}

// TestServeDatasetBudgetBoundsKeyMinting pins the global enforcement: keys
// are minted on first use, so the per-dataset total budget — not the per-key
// one — is what bounds the data's privacy loss against a caller that
// re-keys after every 429.
func TestServeDatasetBudgetBoundsKeyMinting(t *testing.T) {
	cfg := smallConfig()
	cfg.KeyBudget = 0.1   // one query per key
	cfg.TotalBudget = 0.3 // three queries across ALL keys
	s := testServer(t, cfg)
	served := 0
	for i := 0; i < 10; i++ {
		rec := postQuery(t, s, QueryRequest{
			Key: fmt.Sprintf("minted-%d", i), Dataset: "ADULT", Mechanism: "IDENTITY", Epsilon: 0.1,
			Ranges: []Range{{Lo: 0, Hi: 10}},
		})
		switch rec.Code {
		case http.StatusOK:
			served++
		case http.StatusTooManyRequests:
			if !strings.Contains(rec.Body.String(), "dataset") {
				t.Fatalf("429 should blame the dataset budget, got: %s", rec.Body)
			}
		default:
			t.Fatalf("query %d: status %d; body: %s", i, rec.Code, rec.Body)
		}
	}
	if served != 3 {
		t.Errorf("fresh keys bought %d releases, want exactly TotalBudget/eps = 3", served)
	}
}

// TestServeUnpinnedNoiseStreamsAreIndependent smoke-tests the production
// noise path: two identical unseeded requests must draw different noise (a
// repeat would mean a reused or predictable stream).
func TestServeUnpinnedNoiseStreamsAreIndependent(t *testing.T) {
	cfg := smallConfig()
	cfg.AllowSeededQueries = false
	s := testServer(t, cfg)
	req := QueryRequest{
		Key: "alice", Dataset: "ADULT", Mechanism: "IDENTITY", Epsilon: 0.1,
		Ranges: []Range{{Lo: 0, Hi: 255}},
	}
	a := decodeResponse(t, postQuery(t, s, req))
	req.Key = "bob"
	b := decodeResponse(t, postQuery(t, s, req))
	if a.Answers[0] == b.Answers[0] {
		t.Errorf("two unseeded releases drew identical noise: %v", a.Answers[0])
	}
}

// TestServeKeyLengthCapped pins the key-size bound: keys are retained in
// the key table, so an oversized key is rejected before minting anything.
func TestServeKeyLengthCapped(t *testing.T) {
	s := testServer(t, smallConfig())
	long := strings.Repeat("k", maxKeyBytes+1)
	rec := postQuery(t, s, QueryRequest{
		Key: long, Dataset: "ADULT", Mechanism: "IDENTITY", Epsilon: 0.1,
		Ranges: []Range{{Lo: 0, Hi: 1}},
	})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("oversized key: status %d, want 400; body: %s", rec.Code, rec.Body)
	}
	if a := s.lookupAccountant(long); a != nil {
		t.Error("oversized key minted a ledger")
	}
}

// TestServeQueryCountLimit pins the request-hardening cap.
func TestServeQueryCountLimit(t *testing.T) {
	s := testServer(t, smallConfig())
	ranges := make([]Range, 10_001)
	for i := range ranges {
		ranges[i] = Range{Lo: 0, Hi: 1}
	}
	rec := postQuery(t, s, QueryRequest{
		Key: "alice", Dataset: "ADULT", Mechanism: "IDENTITY", Epsilon: 0.1, Ranges: ranges,
	})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("oversized query list: status %d, want 400; body: %s", rec.Code, rec.Body)
	}
	if got := s.lookupSpent("alice"); got != 0 {
		t.Errorf("refused oversized request charged the ledger: spent %v", got)
	}
}

// TestServeGeneratorSeedStableAcrossRosters pins the reproducibility fix:
// which private database a dataset serves depends only on (Seed, its
// position in Datasets), never on how many mechanisms or epsilons are
// registered before it.
func TestServeGeneratorSeedStableAcrossRosters(t *testing.T) {
	base := Config{
		Datasets: []string{"ADULT", "TRACE"}, Mechanisms: []string{"IDENTITY"},
		Epsilons: []float64{0.1}, Domain1D: 64, Scale: 1000, Seed: 9,
		KeyBudget: 5, AllowSeededQueries: true,
	}
	wide := base
	wide.Mechanisms = []string{"IDENTITY", "HB", "DAWA"}
	wide.Epsilons = []float64{0.05, 0.1}

	q := QueryRequest{
		Key: "k", Dataset: "TRACE", Mechanism: "IDENTITY", Epsilon: 0.1,
		Ranges: []Range{{Lo: 0, Hi: 63}}, Seed: 5,
	}
	a := decodeResponse(t, postQuery(t, testServer(t, base), q))
	b := decodeResponse(t, postQuery(t, testServer(t, wide), q))
	if a.Answers[0] != b.Answers[0] {
		t.Errorf("TRACE's private data changed when the mechanism roster grew: %v vs %v", a.Answers[0], b.Answers[0])
	}
}

// TestServeConcurrentClientsSharedPlan exercises the serving hot path under
// -race: many clients hammer ONE precompiled plan concurrently while budget
// charges race on shared and distinct keys. Run with `go test -race`.
func TestServeConcurrentClientsSharedPlan(t *testing.T) {
	cfg := smallConfig()
	cfg.Mechanisms = []string{"DAWA"} // exactly one plan for the cell
	cfg.KeyBudget = 10
	s := testServer(t, cfg)

	const clients, queriesPer = 8, 5
	var wg sync.WaitGroup
	errs := make(chan error, clients*queriesPer)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Half the clients share one key (their charges race on one
			// accountant); the rest get private keys.
			key := "shared"
			if c%2 == 1 {
				key = fmt.Sprintf("client-%d", c)
			}
			// Encode/decode inline: t.Fatalf (which the shared helpers use)
			// must not run off the test goroutine, so every failure routes
			// through the errs channel instead.
			for q := 0; q < queriesPer; q++ {
				body, err := json.Marshal(QueryRequest{
					Key: key, Dataset: "ADULT", Mechanism: "DAWA", Epsilon: 0.1,
					Ranges: []Range{{Lo: 0, Hi: 255}, {Lo: 3, Hi: 17}},
				})
				if err != nil {
					errs <- fmt.Errorf("client %d query %d: encode: %v", c, q, err)
					return
				}
				rec := httptest.NewRecorder()
				s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/query", bytes.NewReader(body)))
				if rec.Code != http.StatusOK {
					errs <- fmt.Errorf("client %d query %d: status %d: %s", c, q, rec.Code, rec.Body)
					return
				}
				var resp QueryResponse
				if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
					errs <- fmt.Errorf("client %d query %d: decode: %v", c, q, err)
					return
				}
				if len(resp.Answers) != 2 {
					errs <- fmt.Errorf("client %d query %d: %d answers", c, q, len(resp.Answers))
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The shared key saw 4 clients x 5 queries x 0.1 eps = 2.0 exactly:
	// racing charges must neither lose nor double-count spends.
	if got := s.lookupSpent("shared"); math.Abs(got-2.0) > 1e-9 {
		t.Errorf("shared key spent %v, want 2.0", got)
	}
}

// BenchmarkServeQuery measures end-to-end request throughput on the serving
// hot path — JSON decode, budget charge, one plan Execute, prefix-sum
// answering, JSON encode — against a precompiled HB plan at n=1024.
func BenchmarkServeQuery(b *testing.B) {
	s := testServer(b, Config{
		Datasets:    []string{"ADULT"},
		Mechanisms:  []string{"HB"},
		Epsilons:    []float64{0.1},
		Domain1D:    1024,
		Scale:       100_000,
		Seed:        1,
		KeyBudget:   1e15, // never exhausts during the benchmark
		TotalBudget: 1e16,
	})
	body, err := json.Marshal(QueryRequest{
		Key: "bench", Dataset: "ADULT", Mechanism: "HB", Epsilon: 0.1,
		Ranges: []Range{{Lo: 0, Hi: 1023}, {Lo: 0, Hi: 511}, {Lo: 256, Hi: 767}},
	})
	if err != nil {
		b.Fatal(err)
	}
	h := s.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/query", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
	}
}

// lookupSpent reads a key's spend without minting a ledger (0 if unknown).
func (s *Server) lookupSpent(key string) float64 {
	if a := s.lookupAccountant(key); a != nil {
		return a.Spent()
	}
	return 0
}

// TestServeFastSampler pins the sampler roster wiring: a server configured
// with the fast sampler serves queries through the fast noise stream (same
// pinned seed, different draws than a legacy server), stays reproducible for
// a pinned seed, and advertises the version on /v1/cells so clients can tell
// which stream a release came from.
func TestServeFastSampler(t *testing.T) {
	legacy := testServer(t, smallConfig())
	cfg := smallConfig()
	cfg.Sampler = noise.SamplerFast
	fast := testServer(t, cfg)

	req := QueryRequest{
		Key: "alice", Dataset: "ADULT", Mechanism: "DAWA", Epsilon: 0.1,
		Ranges: []Range{{Lo: 0, Hi: 255}}, Seed: 7,
	}
	rec := postQuery(t, fast, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("fast query: status %d, want 200; body: %s", rec.Code, rec.Body)
	}
	a := decodeResponse(t, rec)
	if math.Abs(a.Answers[0]-10_000) > 5_000 {
		t.Errorf("fast full-domain answer %v implausibly far from scale 10000", a.Answers[0])
	}
	// Reproducible for a pinned seed, on the fast stream.
	req.Key = "bob"
	b := decodeResponse(t, postQuery(t, fast, req))
	if a.Answers[0] != b.Answers[0] {
		t.Errorf("fast release not reproducible for pinned seed: %v vs %v", a.Answers[0], b.Answers[0])
	}
	// And a different stream than a legacy server draws on the same seed.
	req.Key = "carol"
	l := decodeResponse(t, postQuery(t, legacy, req))
	if a.Answers[0] == l.Answers[0] {
		t.Errorf("fast and legacy servers drew identical noise %v on one seed", a.Answers[0])
	}

	// /v1/cells reports the roster's sampler on every cell.
	for srv, want := range map[*Server]string{legacy: "legacy", fast: "fast"} {
		crec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(crec, httptest.NewRequest(http.MethodGet, "/v1/cells", nil))
		var cells []CellInfo
		if err := json.NewDecoder(crec.Body).Decode(&cells); err != nil {
			t.Fatalf("decoding cells: %v", err)
		}
		if len(cells) == 0 {
			t.Fatal("no cells advertised")
		}
		for _, c := range cells {
			if c.Sampler != want {
				t.Errorf("cell %s/%s advertises sampler %q, want %q", c.Dataset, c.Mechanism, c.Sampler, want)
			}
		}
	}
}
