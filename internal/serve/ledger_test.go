package serve

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"dpbench/internal/ledger"
)

func durableConfig(walPath string) Config {
	cfg := smallConfig()
	cfg.LedgerPath = walPath
	return cfg
}

func getPath(t testing.TB, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

// TestServeDurableRestartPreservesSpentBudget is the headline recovery test:
// charges made through a WAL-backed server survive a restart — a key cannot
// reset its spent epsilon by crashing the server.
func TestServeDurableRestartPreservesSpentBudget(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "spend.wal")
	cfg := durableConfig(walPath)
	cfg.KeyBudget = 0.25 // affords two eps=0.1 queries
	s := testServer(t, cfg)
	req := QueryRequest{
		Key: "alice", Dataset: "ADULT", Mechanism: "IDENTITY", Epsilon: 0.1,
		Ranges: []Range{{Lo: 0, Hi: 10}},
	}
	for i := 1; i <= 2; i++ {
		rec := postQuery(t, s, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("query %d: status %d; body: %s", i, rec.Code, rec.Body)
		}
		if resp := decodeResponse(t, rec); resp.Seq != uint64(i) {
			t.Fatalf("query %d: seq %d, want %d", i, resp.Seq, i)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// "Restart": a fresh server on the same WAL. The spent budget must be
	// there before any request runs.
	s2 := testServer(t, cfg)
	defer s2.Close()
	if records, torn, ok := s2.RecoveryInfo(); !ok || records != 2 || torn != 0 {
		t.Fatalf("RecoveryInfo() = (%d, %d, %v), want (2, 0, true)", records, torn, ok)
	}
	var budget BudgetResponse
	if err := json.NewDecoder(getPath(t, s2, "/v1/budget?key=alice").Body).Decode(&budget); err != nil {
		t.Fatal(err)
	}
	if math.Abs(budget.Spent-0.2) > 1e-12 {
		t.Fatalf("spent %v after restart, want 0.2", budget.Spent)
	}
	// The recovered ledger keeps enforcing: the third query still overspends.
	rec := postQuery(t, s2, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("post-restart overspend: status %d, want 429; body: %s", rec.Code, rec.Body)
	}
	// A restart also preserves the DATASET budget, which is what bounds the
	// data's total privacy loss against re-keying callers.
	req.Key = "bob"
	resp := decodeResponse(t, postQuery(t, s2, req))
	if resp.Seq != 3 {
		t.Fatalf("first post-restart commit got seq %d, want 3 (history continued)", resp.Seq)
	}
}

// TestServeDurableCommitFailureFailsClosed drives the fail-closed contract
// with an injected store fault: the request whose commit fails gets a 503
// with no answers, /healthz reports degraded, and every later spend is also
// refused — while read-only endpoints keep working.
func TestServeDurableCommitFailureFailsClosed(t *testing.T) {
	fs := ledger.NewFaultStore(ledger.NewMemStore())
	fs.FailOn = 2
	cfg := smallConfig()
	cfg.LedgerStore = fs
	s := testServer(t, cfg)
	defer s.Close()

	req := QueryRequest{
		Key: "alice", Dataset: "ADULT", Mechanism: "IDENTITY", Epsilon: 0.1,
		Ranges: []Range{{Lo: 0, Hi: 10}},
	}
	if rec := postQuery(t, s, req); rec.Code != http.StatusOK {
		t.Fatalf("pre-fault query: status %d; body: %s", rec.Code, rec.Body)
	}
	if rec := getPath(t, s, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthy /healthz: status %d", rec.Code)
	}

	rec := postQuery(t, s, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("failed-commit query: status %d, want 503; body: %s", rec.Code, rec.Body)
	}
	var resp struct {
		Error   string    `json:"error"`
		Answers []float64 `json:"answers"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Error == "" || len(resp.Answers) != 0 {
		t.Fatalf("503 must carry an error and no answers, got %+v", resp)
	}

	h := getPath(t, s, "/healthz")
	if h.Code != http.StatusServiceUnavailable || !strings.Contains(h.Body.String(), "degraded") {
		t.Fatalf("/healthz after store failure: status %d body %q, want 503 degraded", h.Code, h.Body)
	}
	// Stores are fail-closed, so later spends are refused too...
	if rec := postQuery(t, s, req); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("query after store failure: status %d, want 503; body: %s", rec.Code, rec.Body)
	}
	// ...while committed state stays inspectable.
	if rec := getPath(t, s, "/v1/budget?key=alice"); rec.Code != http.StatusOK {
		t.Fatalf("read-only endpoint on degraded server: status %d", rec.Code)
	}
	if rec := getPath(t, s, "/v1/root"); rec.Code != http.StatusOK {
		t.Fatalf("/v1/root on degraded server: status %d", rec.Code)
	}
}

// decodeHash parses one hex-encoded hash from a proof or root response.
func decodeHash(t *testing.T, s string) ledger.Hash {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(ledger.Hash{}) {
		t.Fatalf("bad hash %q: %v", s, err)
	}
	var h ledger.Hash
	copy(h[:], b)
	return h
}

// TestServeProofVerifiesOffline is the tamper-evidence acceptance test: using
// ONLY the bytes of its own query responses, /v1/proof, and /v1/root, a
// client verifies that its spend is committed in the published ledger — it
// rebuilds the canonical record from fields it already knows, recomputes the
// leaf hash, and folds the proof path to the root.
func TestServeProofVerifiesOffline(t *testing.T) {
	cfg := durableConfig(filepath.Join(t.TempDir(), "spend.wal"))
	s := testServer(t, cfg)
	defer s.Close()

	type spend struct {
		req QueryRequest
		seq uint64
	}
	var spends []spend
	for i, key := range []string{"alice", "bob", "alice", "carol", "dave"} {
		req := QueryRequest{
			Key: key, Dataset: "ADULT", Mechanism: "IDENTITY", Epsilon: 0.1,
			Ranges: []Range{{Lo: 0, Hi: 10}},
		}
		resp := decodeResponse(t, postQuery(t, s, req))
		if resp.Seq != uint64(i)+1 {
			t.Fatalf("query %d: seq %d, want %d", i, resp.Seq, i+1)
		}
		spends = append(spends, spend{req, resp.Seq})
	}

	var root RootResponse
	if err := json.NewDecoder(getPath(t, s, "/v1/root").Body).Decode(&root); err != nil {
		t.Fatal(err)
	}
	if root.Size != uint64(len(spends)) {
		t.Fatalf("/v1/root size %d, want %d", root.Size, len(spends))
	}

	for _, sp := range spends {
		rec := getPath(t, s, fmt.Sprintf("/v1/proof?seq=%d", sp.seq))
		if rec.Code != http.StatusOK {
			t.Fatalf("proof for seq %d: status %d; body: %s", sp.seq, rec.Code, rec.Body)
		}
		var pr ProofResponse
		if err := json.NewDecoder(rec.Body).Decode(&pr); err != nil {
			t.Fatal(err)
		}
		// The client knows every field of its own spend, so it reconstructs
		// the canonical record and checks the server's leaf hash against it —
		// the server cannot substitute someone else's record at this seq.
		wantLeaf := ledger.LeafHash(ledger.EncodeRecord(ledger.Record{
			Seq: sp.seq, Key: sp.req.Key, Dataset: sp.req.Dataset,
			Mechanism: sp.req.Mechanism, Eps: sp.req.Epsilon,
		}))
		if decodeHash(t, pr.Leaf) != wantLeaf {
			t.Fatalf("seq %d: proof leaf is not this client's spend", sp.seq)
		}
		proof := ledger.Proof{
			Index:    pr.Seq - 1,
			Size:     pr.Size,
			LeafHash: wantLeaf,
			Root:     decodeHash(t, pr.Root),
		}
		for _, h := range pr.Path {
			proof.Path = append(proof.Path, decodeHash(t, h))
		}
		if !ledger.VerifyInclusion(proof) {
			t.Fatalf("seq %d: inclusion proof does not verify offline", sp.seq)
		}
		// And the proof's root is the published root (same tree size).
		if pr.Size == root.Size && pr.Root != root.Root {
			t.Fatalf("seq %d: proof root %s != published root %s", sp.seq, pr.Root, root.Root)
		}
	}

	if rec := getPath(t, s, "/v1/proof?seq=99"); rec.Code != http.StatusNotFound {
		t.Fatalf("proof past the end: status %d, want 404", rec.Code)
	}
	if rec := getPath(t, s, "/v1/proof?seq=0"); rec.Code != http.StatusBadRequest {
		t.Fatalf("proof for seq 0: status %d, want 400", rec.Code)
	}
}

// TestServeDurableConcurrentSharedKey races 8 clients through the WAL-backed
// group-commit path on one shared key and asserts exact accounting — then
// restarts and asserts the durable history reproduces it exactly.
func TestServeDurableConcurrentSharedKey(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "spend.wal")
	cfg := durableConfig(walPath)
	cfg.Mechanisms = []string{"IDENTITY"}
	cfg.KeyBudget = 10
	cfg.TotalBudget = 100
	s := testServer(t, cfg)

	const clients, queriesPer = 8, 5
	var wg sync.WaitGroup
	errs := make(chan error, clients*queriesPer)
	seqs := make(chan uint64, clients*queriesPer)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for q := 0; q < queriesPer; q++ {
				body, err := json.Marshal(QueryRequest{
					Key: "shared", Dataset: "ADULT", Mechanism: "IDENTITY", Epsilon: 0.1,
					Ranges: []Range{{Lo: 0, Hi: 10}},
				})
				if err != nil {
					errs <- err
					return
				}
				rec := httptest.NewRecorder()
				s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/query", bytes.NewReader(body)))
				if rec.Code != http.StatusOK {
					errs <- fmt.Errorf("client %d query %d: status %d: %s", c, q, rec.Code, rec.Body)
					return
				}
				var resp QueryResponse
				if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
					errs <- err
					return
				}
				seqs <- resp.Seq
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	close(seqs)
	for err := range errs {
		t.Fatal(err)
	}
	// Every response carried a distinct sequence number in 1..40.
	const total = clients * queriesPer
	seen := make(map[uint64]bool, total)
	for seq := range seqs {
		if seq < 1 || seq > total || seen[seq] {
			t.Fatalf("invalid or duplicate response seq %d", seq)
		}
		seen[seq] = true
	}
	want := float64(total) * 0.1
	if got := s.lookupSpent("shared"); math.Abs(got-want) > 1e-9 {
		t.Fatalf("shared key spent %v, want %v", got, want)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The durable history reproduces the racing charges exactly.
	s2 := testServer(t, cfg)
	defer s2.Close()
	if records, _, _ := s2.RecoveryInfo(); records != total {
		t.Fatalf("recovered %d records, want %d", records, total)
	}
	if got := s2.lookupSpent("shared"); math.Abs(got-want) > 1e-9 {
		t.Fatalf("shared key spent %v after restart, want %v", got, want)
	}
}

// TestServeWithoutLedgerUnchanged pins the default path: no ledger configured
// means no seq in responses and 404 on the ledger endpoints — the purely
// in-memory behavior, bit-identical to before the durable ledger existed.
func TestServeWithoutLedgerUnchanged(t *testing.T) {
	s := testServer(t, smallConfig())
	rec := postQuery(t, s, QueryRequest{
		Key: "alice", Dataset: "ADULT", Mechanism: "IDENTITY", Epsilon: 0.1,
		Ranges: []Range{{Lo: 0, Hi: 10}},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d; body: %s", rec.Code, rec.Body)
	}
	if strings.Contains(rec.Body.String(), "\"seq\"") {
		t.Errorf("in-memory response leaked a seq field: %s", rec.Body)
	}
	for _, path := range []string{"/v1/root", "/v1/proof?seq=1"} {
		if rec := getPath(t, s, path); rec.Code != http.StatusNotFound {
			t.Errorf("%s without a ledger: status %d, want 404", path, rec.Code)
		}
	}
	// Close is a no-op for an in-memory server.
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestServeLedgerConfigValidation pins the Config contract: LedgerPath and
// LedgerStore are mutually exclusive.
func TestServeLedgerConfigValidation(t *testing.T) {
	cfg := durableConfig(filepath.Join(t.TempDir(), "spend.wal"))
	cfg.LedgerStore = ledger.NewMemStore()
	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted both LedgerPath and LedgerStore")
	}
}

// BenchmarkServeQueryDurable measures the WAL-backed serving path under the
// parallelism that lets group commit amortize its fsync: compare against
// BenchmarkServeQuery (the in-memory baseline) at matching -cpu settings.
func BenchmarkServeQueryDurable(b *testing.B) {
	s := testServer(b, Config{
		Datasets:    []string{"ADULT"},
		Mechanisms:  []string{"HB"},
		Epsilons:    []float64{0.1},
		Domain1D:    1024,
		Scale:       100_000,
		Seed:        1,
		KeyBudget:   1e15, // never exhausts during the benchmark
		TotalBudget: 1e16,
		LedgerPath:  filepath.Join(b.TempDir(), "bench.wal"),
	})
	defer s.Close()
	body, err := json.Marshal(QueryRequest{
		Key: "bench", Dataset: "ADULT", Mechanism: "HB", Epsilon: 0.1,
		Ranges: []Range{{Lo: 0, Hi: 1023}, {Lo: 0, Hi: 511}, {Lo: 256, Hi: 767}},
	})
	if err != nil {
		b.Fatal(err)
	}
	h := s.Handler()
	b.ReportAllocs()
	b.SetParallelism(8) // 8 in-flight requests per core share each fsync
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			req := httptest.NewRequest(http.MethodPost, "/v1/query", bytes.NewReader(body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d: %s", rec.Code, rec.Body)
			}
		}
	})
}
