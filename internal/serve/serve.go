// Package serve turns the benchmark library into a long-running,
// budget-metered DP query service: the `dpbench serve` subcommand.
//
// At startup the server registers the requested datasets, draws one private
// data vector per dataset with the DPBench generator, and precompiles one
// release plan per (dataset, mechanism, epsilon) cell using the shared
// Plan/Execute machinery — so the per-request hot path is exactly one plan
// Execute (noise + inference, no structure building) plus prefix-sum query
// answering. Plans are concurrency-safe and shared by every request.
//
// Budget enforcement is per API key: each key owns a privacy.Accountant
// holding the configured total epsilon. Every query request charges the
// trial's epsilon to the caller's ledger before any noise is drawn; a
// request that would overspend is refused with HTTP 429 and the ledger is
// left unchanged, so a key's releases always compose to at most its total
// budget. Answers computed from one release are post-processing and carry
// no extra cost beyond the release's epsilon.
package serve

import (
	cryptorand "crypto/rand"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	randv2 "math/rand/v2"
	"net/http"
	"sort"
	"strings"
	"sync"

	"dpbench/internal/algo"
	"dpbench/internal/dataset"
	"dpbench/internal/ledger"
	"dpbench/internal/noise"
	"dpbench/internal/workload"
)

// Request hardening bounds: a query request is fully decoded before any
// budget is charged, so both the body size and the query count must be
// capped to keep resource use bounded for unauthenticated callers.
const (
	maxRequestBytes      = 1 << 20 // 1 MiB of JSON
	maxQueriesPerRequest = 10_000
	// maxMintedKeys caps the key table: keys are minted on first use for
	// unauthenticated callers, so without a cap a request flood of fresh
	// key strings would grow the accountant map until the process OOMs.
	maxMintedKeys = 100_000
	// maxKeyBytes caps the length of an API key string: keys are retained
	// verbatim in the key table (and in ledger labels), so without a cap a
	// flood of megabyte-long key strings would exhaust memory long before
	// maxMintedKeys trips.
	maxKeyBytes = 256
)

// chachaSource adapts math/rand/v2's ChaCha8 — a cryptographically strong
// stream cipher — to the math/rand Source64 the noise meter consumes. Each
// request gets its own source seeded with 32 fresh bytes from crypto/rand,
// so no request's noise stream is derivable from any other's, and observing
// some outputs of a stream (e.g. the exact noise on a known-zero cell) does
// not predict its remaining outputs the way an invertible mixer would.
type chachaSource struct{ c *randv2.ChaCha8 }

func (s chachaSource) Uint64() uint64 { return s.c.Uint64() }
func (s chachaSource) Int63() int64   { return int64(s.c.Uint64() >> 1) }
func (s chachaSource) Seed(int64)     {} // crypto-seeded at construction; reseeding unsupported

// newCryptoRand returns a fresh cryptographically seeded noise RNG.
func newCryptoRand() (*rand.Rand, error) {
	var key [32]byte
	if _, err := cryptorand.Read(key[:]); err != nil {
		return nil, fmt.Errorf("seeding noise stream: %w", err)
	}
	return rand.New(chachaSource{c: randv2.NewChaCha8(key)}), nil
}

// Config describes the cells the server precompiles and the per-key budget
// it enforces.
type Config struct {
	// Datasets names the benchmark datasets to register (1D and 2D mix
	// allowed). Empty is an error: a query service with nothing to query.
	Datasets []string
	// Mechanisms names the release mechanisms to precompile. Each must
	// support the dimensionality of every registered dataset it is paired
	// with (non-matching pairs are skipped).
	Mechanisms []string
	// Epsilons lists the per-query privacy budgets offered. Every value
	// must be positive.
	Epsilons []float64
	// Domain1D is the 1D domain size (default 1024).
	Domain1D int
	// Side2D is the 2D grid side (default 64).
	Side2D int
	// Scale is the number of tuples drawn per dataset (default 100000).
	Scale int
	// Seed fixes the data generator, so a server instance serves a
	// reproducible private database. Noise streams are NOT derived from it:
	// each request draws a fresh crypto/rand-seeded ChaCha8 stream, because
	// a noise stream a client can predict (or recover from one release) can
	// be subtracted back out of every release.
	Seed int64
	// KeyBudget is the total epsilon each API key may spend (default 1.0).
	KeyBudget float64
	// TotalBudget bounds the total epsilon spent per dataset across ALL
	// keys (default 10 * KeyBudget). Keys are minted on first use, so
	// without a global cap a caller could re-key forever and the per-key
	// enforcement would bound nothing; once a dataset's total is exhausted
	// every further query on it is refused.
	TotalBudget float64
	// AllowSeededQueries permits requests to pin their noise stream via
	// QueryRequest.Seed. This makes releases reproducible — and therefore
	// removable — by anyone who knows the seed, so it exists for tests and
	// replay tooling only; the default (false) rejects seeded requests.
	AllowSeededQueries bool
	// Sampler selects the noise-sampler family every query meter runs under
	// (the -sampler CLI flag). The zero value is the legacy reference
	// sampler; SamplerFast serves the table-accelerated family. Both sample
	// the same distributions, so the served privacy guarantees are identical.
	Sampler noise.SamplerVersion
	// LedgerPath, when non-empty, backs every budget charge with an
	// append-only, tamper-evident WAL at this path (the -ledger CLI flag):
	// spends are group-committed with an fsync before any noise is drawn,
	// startup replays the log so a restart preserves every charge, and
	// committed spends are chained into a Merkle root published at /v1/root
	// with per-record inclusion proofs at /v1/proof. On a store write
	// failure the server fails closed: the request gets 503 and /healthz
	// reports degraded. Empty (the default) keeps accounting purely
	// in-memory — the existing behavior, bit-identical.
	LedgerPath string
	// LedgerStore injects a ledger store directly (tests, fault injection,
	// alternative backends). Mutually exclusive with LedgerPath.
	LedgerStore ledger.Store
	// Audit retains every accountant's full per-spend history (the -audit
	// serve flag). Off by default: a serving ledger otherwise grows by one
	// record per request for the life of the process, so without audit the
	// accountants keep only O(1) running totals.
	Audit bool
}

// cell is one precompiled (dataset, mechanism, epsilon) release pipeline.
type cell struct {
	dataset string
	mech    string
	eps     float64
	dims    []int
	plan    algo.Plan
	scale   float64
	// scratch recycles the per-request buffers — the estimate vector and
	// the prefix-sum/summed-area table answers are read from — so the
	// request hot path performs no domain-sized allocations.
	scratch sync.Pool
}

// queryScratch holds one request's working buffers: est receives the plan's
// release, table its prefix sums (len n+1 for 1D, (ny+1)*(nx+1) for 2D).
type queryScratch struct {
	est   []float64
	table []float64
}

func cellKey(ds, mech string, eps float64) string {
	return fmt.Sprintf("%s|%s|%g", ds, mech, eps)
}

// Server answers DP range-query workloads over HTTP/JSON against
// precompiled release plans, enforcing a per-API-key privacy budget.
type Server struct {
	cfg   Config
	cells map[string]*cell

	mu   sync.Mutex
	keys map[string]*noise.Accountant
	// dsBudgets caps the epsilon spent per dataset across all keys, so
	// minting fresh keys cannot buy unbounded releases of the same data.
	dsBudgets map[string]*noise.Accountant

	// ledger is the durable, tamper-evident spend store (nil when the
	// server runs with purely in-memory accounting, the default).
	ledger    *durableLedger
	closeOnce sync.Once
	closeErr  error

	mux *http.ServeMux
}

// New registers the configured datasets, generates their private data
// vectors, and precompiles every (dataset, mechanism, epsilon) plan. It
// fails fast — at startup, not at query time — on unknown dataset or
// mechanism names, non-positive epsilons, or a roster that yields no cells.
func New(cfg Config) (*Server, error) {
	if len(cfg.Datasets) == 0 {
		return nil, fmt.Errorf("serve: no datasets registered; pass at least one of %s", strings.Join(datasetNames(), ", "))
	}
	if len(cfg.Mechanisms) == 0 {
		return nil, fmt.Errorf("serve: no mechanisms registered; pass at least one of %s", strings.Join(algo.Names(), ", "))
	}
	if len(cfg.Epsilons) == 0 {
		return nil, fmt.Errorf("serve: no epsilons configured")
	}
	for _, e := range cfg.Epsilons {
		if e <= 0 {
			return nil, fmt.Errorf("serve: non-positive epsilon %v", e)
		}
	}
	if cfg.Domain1D <= 0 {
		cfg.Domain1D = 1024
	}
	if cfg.Side2D <= 0 {
		cfg.Side2D = 64
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 100_000
	}
	if cfg.KeyBudget <= 0 {
		cfg.KeyBudget = 1.0
	}
	if cfg.TotalBudget <= 0 {
		cfg.TotalBudget = 10 * cfg.KeyBudget
	}
	if cfg.TotalBudget < cfg.KeyBudget {
		return nil, fmt.Errorf("serve: total per-dataset budget %v is below the per-key budget %v; no key could ever spend its allowance", cfg.TotalBudget, cfg.KeyBudget)
	}
	for _, e := range cfg.Epsilons {
		if e > cfg.KeyBudget {
			return nil, fmt.Errorf("serve: epsilon %v exceeds the per-key budget %v; no key could ever afford it", e, cfg.KeyBudget)
		}
	}

	s := &Server{cfg: cfg, cells: map[string]*cell{}, keys: map[string]*noise.Accountant{}, dsBudgets: map[string]*noise.Accountant{}}
	for di, dsName := range cfg.Datasets {
		ds, err := dataset.ByName(dsName)
		if err != nil {
			return nil, fmt.Errorf("serve: registering dataset: %w", err)
		}
		if _, dup := s.dsBudgets[ds.Name]; dup {
			return nil, fmt.Errorf("serve: dataset %s listed twice", ds.Name)
		}
		s.dsBudgets[ds.Name], err = noise.NewAccountant(cfg.TotalBudget)
		if err != nil {
			return nil, fmt.Errorf("serve: dataset budget: %w", err)
		}
		// Same retention policy as the key ledgers: without -audit the
		// dataset accountant keeps O(1) running totals, not one Spend per
		// request forever.
		s.dsBudgets[ds.Name].SetRetainHistory(cfg.Audit)
		var dims []int
		if ds.Dim == 1 {
			dims = []int{cfg.Domain1D}
		} else {
			dims = []int{cfg.Side2D, cfg.Side2D}
		}
		// The generator seed depends only on the dataset's position in the
		// roster, so adding mechanisms or epsilons never changes which
		// private database a dataset serves.
		genRNG := rand.New(rand.NewSource(cfg.Seed + int64(di)))
		x, err := ds.Generate(genRNG, cfg.Scale, dims...)
		if err != nil {
			return nil, fmt.Errorf("serve: generating %s: %w", ds.Name, err)
		}
		// Workload-aware mechanisms (MWEM, GreedyH) plan against the
		// canonical workload for the dimensionality; answers to ad-hoc
		// request ranges are post-processing of the released estimate.
		var w *workload.Workload
		if ds.Dim == 1 {
			w = workload.Prefix(dims[0])
		} else {
			w = workload.RandomRange2D(dims[1], dims[0], 512, rand.New(rand.NewSource(cfg.Seed)))
		}
		for _, mechName := range cfg.Mechanisms {
			m, err := algo.New(mechName)
			if err != nil {
				return nil, fmt.Errorf("serve: registering mechanism: %w", err)
			}
			if !m.Supports(ds.Dim) {
				continue // e.g. a 2D-only grid mechanism paired with a 1D dataset
			}
			for _, eps := range cfg.Epsilons {
				p, err := m.Plan(x, w, eps)
				if err != nil {
					return nil, fmt.Errorf("serve: planning %s on %s at eps=%v: %w", mechName, ds.Name, eps, err)
				}
				n := x.N()
				tableLen := n + 1
				if len(dims) == 2 {
					tableLen = (dims[0] + 1) * (dims[1] + 1)
				}
				c := &cell{dataset: ds.Name, mech: mechName, eps: eps, dims: dims, plan: p}
				// Served by /v1/cells so clients can size workloads: the
				// dataset scale is declared public side information, the same
				// audited exemption the Pside mechanisms rely on.
				c.scale = x.Scale() //dp:public dataset scale is declared side information (HayMMCZ16 Principle 7)
				c.scratch.New = func() any {
					return &queryScratch{est: make([]float64, n), table: make([]float64, tableLen)}
				}
				s.cells[cellKey(ds.Name, mechName, eps)] = c
			}
		}
	}
	if len(s.cells) == 0 {
		return nil, fmt.Errorf("serve: no (dataset, mechanism) pair is dimension-compatible; nothing to serve")
	}

	// Durable ledger (optional): open, replay into the accountants built
	// above, and start the group-commit loop — before the mux exists, so no
	// request can race recovery.
	if err := s.openLedger(); err != nil {
		return nil, err
	}

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("GET /v1/mechanisms", s.handleMechanisms)
	s.mux.HandleFunc("GET /v1/cells", s.handleCells)
	s.mux.HandleFunc("GET /v1/budget", s.handleBudget)
	s.mux.HandleFunc("GET /v1/root", s.handleRoot)
	s.mux.HandleFunc("GET /v1/proof", s.handleProof)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s, nil
}

// handleHealthz reports liveness — and, when a durable ledger is configured,
// whether the store has failed. A degraded server still answers read-only
// endpoints but fails every spend closed with 503, so health checkers can
// rotate it out while committed state stays inspectable.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if err := s.ledgerErr(); err != nil {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "degraded: ledger store failed: %v\n", err)
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

func datasetNames() []string {
	var out []string
	for _, d := range dataset.Registry1D() {
		out = append(out, d.Name)
	}
	for _, d := range dataset.Registry2D() {
		out = append(out, d.Name)
	}
	sort.Strings(out)
	return out
}

// accountant returns the API key's budget ledger, creating it with the
// configured total on first use. It fails once the key table is full, so a
// flood of fresh key strings cannot grow memory without bound (the
// per-dataset TotalBudget is what bounds privacy loss; this bounds RAM).
func (s *Server) accountant(key string) (*noise.Accountant, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.keys[key]
	if !ok {
		if len(s.keys) >= maxMintedKeys {
			return nil, fmt.Errorf("key table full: %d keys already minted", maxMintedKeys)
		}
		a = s.mintAccountant(key)
		s.keys[key] = a
	}
	return a, nil
}

// lookupAccountant returns the key's ledger without minting one, for
// read-only endpoints.
func (s *Server) lookupAccountant(key string) *noise.Accountant {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.keys[key]
}

// QueryRequest is the body of POST /v1/query. Exactly one of Ranges (1D) or
// Rects (2D) must match the dataset's dimensionality.
type QueryRequest struct {
	// Key is the caller's API key; its privacy budget pays for the query.
	Key string `json:"key"`
	// Dataset and Mechanism select the precompiled cell.
	Dataset   string `json:"dataset"`
	Mechanism string `json:"mechanism"`
	// Epsilon is the privacy budget of this release; must be one of the
	// server's configured epsilons.
	Epsilon float64 `json:"epsilon"`
	// Ranges are inclusive 1D [lo, hi] cell ranges.
	Ranges []Range `json:"ranges,omitempty"`
	// Rects are inclusive 2D rectangles (rows [y0,y1], columns [x0,x1]).
	Rects []Rect `json:"rects,omitempty"`
	// Seed, when non-zero, pins the noise stream for reproducible releases.
	// Accepted only when the server runs with AllowSeededQueries (tests,
	// replay tooling): a predictable noise stream can be subtracted back
	// out of the release, so production servers reject it. Zero draws an
	// unpredictable server-side stream.
	Seed int64 `json:"seed,omitempty"`
}

// Range is an inclusive 1D range query [Lo, Hi].
type Range struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Rect is an inclusive 2D rectangle query over rows [Y0, Y1] and columns
// [X0, X1].
type Rect struct {
	Y0 int `json:"y0"`
	X0 int `json:"x0"`
	Y1 int `json:"y1"`
	X1 int `json:"x1"`
}

// QueryResponse is the body of a successful /v1/query call.
type QueryResponse struct {
	Dataset   string  `json:"dataset"`
	Mechanism string  `json:"mechanism"`
	Epsilon   float64 `json:"epsilon"`
	// Answers holds one differentially private count per requested query,
	// in request order.
	Answers []float64 `json:"answers"`
	// Spent and Remaining report the key's ledger after this release.
	Spent     float64 `json:"spent"`
	Remaining float64 `json:"remaining"`
	// Seq is the 1-based durable-ledger sequence number of this release's
	// committed spend; pass it to GET /v1/proof?seq=N for an inclusion proof.
	// Omitted when the server runs without a durable ledger.
	Seq uint64 `json:"seq,omitempty"`
}

// errorResponse is the JSON body of every non-2xx reply.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed request body: %v", err)
		return
	}
	if req.Key == "" {
		writeError(w, http.StatusBadRequest, "missing api key")
		return
	}
	if len(req.Key) > maxKeyBytes {
		writeError(w, http.StatusBadRequest, "api key exceeds %d bytes", maxKeyBytes)
		return
	}
	if req.Seed != 0 && !s.cfg.AllowSeededQueries {
		writeError(w, http.StatusBadRequest,
			"seeded queries are disabled: a client-pinned noise stream makes the release denoisable (start the server with -allow-seeded-queries for test/replay use)")
		return
	}
	if q := len(req.Ranges) + len(req.Rects); q > maxQueriesPerRequest {
		writeError(w, http.StatusBadRequest, "%d queries in one request exceeds the limit of %d", q, maxQueriesPerRequest)
		return
	}
	c, ok := s.cells[cellKey(req.Dataset, req.Mechanism, req.Epsilon)]
	if !ok {
		writeError(w, http.StatusNotFound,
			"no precompiled cell for dataset=%q mechanism=%q epsilon=%g; see /v1/cells", req.Dataset, req.Mechanism, req.Epsilon)
		return
	}
	if err := validateQueries(&req, c.dims); err != nil {
		writeError(w, http.StatusBadRequest, "malformed workload: %v", err)
		return
	}

	// Charge BEFORE drawing noise: a refused request must not release
	// anything. The key's ledger is charged first (the caller's own
	// allowance), then the dataset's global ledger, which is what actually
	// bounds the data's total privacy loss — keys are minted on first use,
	// so without it a caller could re-key forever. If the dataset charge is
	// refused after the key charge succeeded, the key keeps the charge:
	// over-reporting a spend is always privacy-safe, and at that point the
	// dataset is out of budget for everyone anyway. Spend is atomic on each
	// accountant, so racing requests cannot jointly overspend either ledger.
	acct, err := s.accountant(req.Key)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "cannot mint key %q: %v", req.Key, err)
		return
	}
	seq, err := acct.SpendDurable("query "+req.Dataset+"/"+req.Mechanism, req.Epsilon)
	if err != nil {
		if errors.Is(err, noise.ErrBudgetExhausted) {
			writeError(w, http.StatusTooManyRequests,
				"privacy budget exhausted for key %q: spent %g of %g, query needs %g", req.Key, acct.Spent(), s.cfg.KeyBudget, req.Epsilon)
			return
		}
		if errors.Is(err, noise.ErrCommitFailed) {
			// Fail closed: the spend could not be made durable, so no noise
			// may be drawn against it — a crash would lose the only evidence
			// the budget was spent. /healthz now reports degraded.
			writeError(w, http.StatusServiceUnavailable, "budget commit failed, no release performed (server degraded): %v", err)
			return
		}
		writeError(w, http.StatusBadRequest, "budget charge failed: %v", err)
		return
	}
	if err := s.dsBudgets[c.dataset].Spend("key "+req.Key, req.Epsilon); err != nil {
		if errors.Is(err, noise.ErrBudgetExhausted) {
			writeError(w, http.StatusTooManyRequests,
				"dataset %q has exhausted its total privacy budget (%g across all keys); no further releases", c.dataset, s.cfg.TotalBudget)
			return
		}
		writeError(w, http.StatusBadRequest, "budget charge failed: %v", err)
		return
	}

	// Seed-pinned requests (test/replay mode only, gated above) use the
	// full-64-bit SplitMix64 stream; production requests draw a fresh
	// crypto-seeded ChaCha8 stream, unrecoverable from any release.
	var rng *rand.Rand
	if req.Seed != 0 {
		rng = noise.NewRand(uint64(req.Seed))
	} else {
		var rngErr error
		if rng, rngErr = newCryptoRand(); rngErr != nil {
			writeError(w, http.StatusInternalServerError, "%v", rngErr)
			return
		}
	}
	sc := c.scratch.Get().(*queryScratch)
	defer c.scratch.Put(sc)
	if err := c.plan.Execute(noise.NewMeterV(req.Epsilon, rng, s.cfg.Sampler), sc.est); err != nil {
		// The budget was charged but no release happened; refund by
		// resetting is unsound (ledger history), so surface the failure.
		writeError(w, http.StatusInternalServerError, "mechanism execution failed: %v", err)
		return
	}
	answers := answerQueries(&req, c.dims, sc)

	writeJSON(w, http.StatusOK, QueryResponse{
		Dataset:   c.dataset,
		Mechanism: c.mech,
		Epsilon:   c.eps,
		Answers:   answers,
		Spent:     acct.Spent(),
		Remaining: acct.Remaining(),
		Seq:       seq,
	})
}

// answerQueries computes every requested query from the released estimate —
// the answers slice is the only per-request allocation on this path.
// Queries were validated before any budget was charged.
func answerQueries(req *QueryRequest, dims []int, sc *queryScratch) []float64 {
	fillAnswerTable(dims, sc)
	if len(dims) == 1 {
		table := sc.table
		answers := make([]float64, len(req.Ranges))
		for i, q := range req.Ranges {
			answers[i] = table[q.Hi+1] - table[q.Lo]
		}
		return answers
	}
	stride := dims[1] + 1
	sat := sc.table
	answers := make([]float64, len(req.Rects))
	for i, q := range req.Rects {
		answers[i] = sat[(q.Y1+1)*stride+q.X1+1] - sat[q.Y0*stride+q.X1+1] -
			sat[(q.Y1+1)*stride+q.X0] + sat[q.Y0*stride+q.X0]
	}
	return answers
}

// fillAnswerTable rebuilds the prefix sums (1D) or the summed-area table
// (2D) of the released estimate into the pooled scratch. This is the
// domain-sized piece of per-request answering and must not allocate.
//
//dp:hotpath
func fillAnswerTable(dims []int, sc *queryScratch) {
	if len(dims) == 1 {
		table := sc.table // len n+1; table[0] == 0 from construction
		for i, v := range sc.est {
			table[i+1] = table[i] + v
		}
		return
	}
	ny, nx := dims[0], dims[1]
	stride := nx + 1
	sat := sc.table // row 0 and column 0 stay zero from construction
	for y := 0; y < ny; y++ {
		row := sat[(y+1)*stride:]
		prev := sat[y*stride:]
		for x := 0; x < nx; x++ {
			row[x+1] = sc.est[y*nx+x] + prev[x+1] + row[x] - prev[x]
		}
	}
}

// validateQueries checks the request's queries against the cell's domain, so
// a malformed workload is rejected before any budget is charged.
func validateQueries(req *QueryRequest, dims []int) error {
	switch len(dims) {
	case 1:
		if len(req.Rects) > 0 {
			return fmt.Errorf("dataset is 1D; use \"ranges\", not \"rects\"")
		}
		if len(req.Ranges) == 0 {
			return fmt.Errorf("no queries: provide at least one range")
		}
		n := dims[0]
		for i, q := range req.Ranges {
			if q.Lo < 0 || q.Hi >= n || q.Lo > q.Hi {
				return fmt.Errorf("range %d: [%d, %d] is not a valid inclusive range over [0, %d)", i, q.Lo, q.Hi, n)
			}
		}
		return nil
	case 2:
		if len(req.Ranges) > 0 {
			return fmt.Errorf("dataset is 2D; use \"rects\", not \"ranges\"")
		}
		if len(req.Rects) == 0 {
			return fmt.Errorf("no queries: provide at least one rect")
		}
		ny, nx := dims[0], dims[1]
		for i, q := range req.Rects {
			if q.Y0 < 0 || q.Y1 >= ny || q.Y0 > q.Y1 || q.X0 < 0 || q.X1 >= nx || q.X0 > q.X1 {
				return fmt.Errorf("rect %d: [%d,%d]x[%d,%d] is not a valid inclusive rectangle over %dx%d", i, q.Y0, q.Y1, q.X0, q.X1, ny, nx)
			}
		}
		return nil
	default:
		return fmt.Errorf("unsupported dimensionality %d", len(dims))
	}
}

// CellInfo describes one precompiled cell for GET /v1/cells.
type CellInfo struct {
	Dataset   string  `json:"dataset"`
	Mechanism string  `json:"mechanism"`
	Epsilon   float64 `json:"epsilon"`
	Dims      []int   `json:"dims"`
	Scale     float64 `json:"scale"`
	// Sampler reports the noise-sampler family the server draws from
	// ("legacy" or "fast"); it is server-wide, repeated per cell so roster
	// consumers need no second endpoint.
	Sampler string `json:"sampler"`
}

func (s *Server) handleCells(w http.ResponseWriter, _ *http.Request) {
	out := make([]CellInfo, 0, len(s.cells))
	for _, c := range s.cells {
		out = append(out, CellInfo{Dataset: c.dataset, Mechanism: c.mech, Epsilon: c.eps, Dims: c.dims, Scale: c.scale, Sampler: s.cfg.Sampler.String()})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dataset != out[j].Dataset {
			return out[i].Dataset < out[j].Dataset
		}
		if out[i].Mechanism != out[j].Mechanism {
			return out[i].Mechanism < out[j].Mechanism
		}
		return out[i].Epsilon < out[j].Epsilon
	})
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleMechanisms(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, algo.Describe())
}

// BudgetResponse is the body of GET /v1/budget.
type BudgetResponse struct {
	Key       string  `json:"key"`
	Total     float64 `json:"total"`
	Spent     float64 `json:"spent"`
	Remaining float64 `json:"remaining"`
}

func (s *Server) handleBudget(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		writeError(w, http.StatusBadRequest, "missing ?key= parameter")
		return
	}
	// Read-only: an unknown key reports a full budget without minting a
	// ledger, so probing this endpoint cannot grow the key table.
	spent := 0.0
	if a := s.lookupAccountant(key); a != nil {
		spent = a.Spent()
	}
	writeJSON(w, http.StatusOK, BudgetResponse{Key: key, Total: s.cfg.KeyBudget, Spent: spent, Remaining: s.cfg.KeyBudget - spent})
}
