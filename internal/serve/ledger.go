package serve

import (
	"encoding/hex"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"dpbench/internal/ledger"
	"dpbench/internal/noise"
)

// ledgerMaxBatch bounds the records per group commit. The batcher only
// batches what is already waiting, so the bound matters under heavy
// concurrency: 128 in-flight spends still pay a single fsync.
const ledgerMaxBatch = 128

// durableLedger is the serving layer's durable, tamper-evident spend ledger:
// a Store (WAL in production, injected fakes in tests) behind a group-commit
// Batcher, with every committed record chained into a Merkle Tree in commit
// order. It exists only when the server is configured with LedgerPath or
// LedgerStore; without it the accountants stay purely in-memory, exactly as
// before.
type durableLedger struct {
	store   ledger.Store
	batcher *ledger.Batcher
	tree    *ledger.Tree
	// recovered and truncated summarize startup replay: committed records
	// restored into the accountants, and torn-tail bytes discarded from the
	// WAL (always 0 for non-WAL stores).
	recovered uint64
	truncated int64
}

// openLedger opens the configured store, replays it into the freshly built
// accountants (a restart preserves every committed charge), seeds the Merkle
// tree with the committed history, and starts the group-commit loop. Called
// from New after datasets and budgets are set up, before any request runs.
func (s *Server) openLedger() error {
	if s.cfg.LedgerPath != "" && s.cfg.LedgerStore != nil {
		return fmt.Errorf("serve: both LedgerPath and LedgerStore configured; pick one")
	}
	var store ledger.Store
	switch {
	case s.cfg.LedgerPath != "":
		w, err := ledger.OpenWAL(s.cfg.LedgerPath)
		if err != nil {
			return fmt.Errorf("serve: opening ledger: %w", err)
		}
		store = w
	case s.cfg.LedgerStore != nil:
		store = s.cfg.LedgerStore
	default:
		return nil // in-memory accounting only: the existing default path
	}

	s.ledger = &durableLedger{store: store, tree: &ledger.Tree{}}
	var buf []byte
	err := store.Replay(func(r ledger.Record) error {
		buf = ledger.AppendRecord(buf[:0], r)
		s.ledger.tree.Append(buf)
		a, ok := s.keys[r.Key]
		if !ok {
			if len(s.keys) >= maxMintedKeys {
				// Refusing startup beats silently dropping charges: a
				// dropped charge under-reports spent budget, which is the
				// one direction the ledger must never err in.
				return fmt.Errorf("recovered ledger holds more than %d keys", maxMintedKeys)
			}
			a = s.mintAccountant(r.Key)
			s.keys[r.Key] = a
		}
		if err := a.Restore("query "+r.Dataset+"/"+r.Mechanism, r.Eps); err != nil {
			return err
		}
		// A dataset that is no longer in the roster keeps its key charges
		// (the caller spent that budget) but has no live accountant to
		// restore into; re-registering it starts a fresh dataset total.
		if ds := s.dsBudgets[r.Dataset]; ds != nil {
			if err := ds.Restore("key "+r.Key, r.Eps); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		store.Close()
		return fmt.Errorf("serve: recovering ledger: %w", err)
	}
	s.ledger.recovered = s.ledger.tree.Size()
	if w, ok := store.(*ledger.WAL); ok {
		_, s.ledger.truncated = w.Recovered()
	}
	// The committer appends each committed record to the Merkle tree before
	// any submitter is released, so a response carrying seq N implies
	// /v1/proof?seq=N already verifies.
	tree := s.ledger.tree
	var leafBuf []byte
	s.ledger.batcher = ledger.NewBatcher(store, ledgerMaxBatch, func(recs []ledger.Record) {
		for _, r := range recs {
			leafBuf = ledger.AppendRecord(leafBuf[:0], r)
			tree.Append(leafBuf)
		}
	})
	return nil
}

// commitSpend is the accountant commit hook: it turns one key's spend into a
// ledger record and blocks until the group commit containing it is durable.
func (s *Server) commitSpend(key string, sp noise.Spend) (uint64, error) {
	rest, ok := strings.CutPrefix(sp.Label, "query ")
	if !ok {
		return 0, fmt.Errorf("serve: unledgerable spend label %q", sp.Label)
	}
	ds, mech, ok := strings.Cut(rest, "/")
	if !ok {
		return 0, fmt.Errorf("serve: unledgerable spend label %q", sp.Label)
	}
	return s.ledger.batcher.Submit(ledger.Record{Key: key, Dataset: ds, Mechanism: mech, Eps: sp.Eps})
}

// mintAccountant builds one key's accountant with the server's retention
// policy and, when a durable ledger is configured, the commit hook that
// makes every spend durable before a release happens.
func (s *Server) mintAccountant(key string) *noise.Accountant {
	a, _ := noise.NewAccountant(s.cfg.KeyBudget) // KeyBudget validated positive in New
	a.SetRetainHistory(s.cfg.Audit)
	if s.ledger != nil {
		a.SetCommitFunc(func(sp noise.Spend) (uint64, error) { return s.commitSpend(key, sp) })
	}
	return a
}

// RecoveryInfo summarizes what startup replay recovered from the durable
// ledger: committed spend records restored, and torn-tail bytes discarded
// from the WAL. ok is false when no durable ledger is configured.
func (s *Server) RecoveryInfo() (records uint64, truncatedBytes int64, ok bool) {
	if s.ledger == nil {
		return 0, 0, false
	}
	return s.ledger.recovered, s.ledger.truncated, true
}

// ledgerErr reports the sticky store failure, if any (nil while healthy or
// when no durable ledger is configured).
func (s *Server) ledgerErr() error {
	if s.ledger == nil || s.ledger.batcher == nil {
		return nil
	}
	return s.ledger.batcher.Err()
}

// Close flushes and stops the durable ledger (no-op for a purely in-memory
// server). The HTTP server should be drained first: a request in flight
// after Close fails closed with 503.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		if s.ledger == nil {
			return
		}
		s.ledger.batcher.Close()
		s.closeErr = s.ledger.store.Close()
	})
	return s.closeErr
}

// RootResponse is the body of GET /v1/root: the ledger's current Merkle root
// and the number of committed spend records it covers. Callers that remember
// a root (or compare roots out of band) can detect a rewritten history.
type RootResponse struct {
	Size uint64 `json:"size"`
	Root string `json:"root"`
}

// ProofResponse is the body of GET /v1/proof?seq=N: an RFC 6962-style
// inclusion proof that the N-th committed spend is in the ledger whose root
// is Root. Leaf is the record's leaf hash — not the record itself, which
// names another caller's API key; the caller that made the spend recomputes
// the leaf hash from its own request (key, dataset, mechanism, epsilon, seq)
// and the canonical record encoding, then folds Path to Root offline.
type ProofResponse struct {
	Seq  uint64   `json:"seq"`
	Size uint64   `json:"size"`
	Leaf string   `json:"leaf"`
	Path []string `json:"path"`
	Root string   `json:"root"`
}

func (s *Server) handleRoot(w http.ResponseWriter, _ *http.Request) {
	if s.ledger == nil {
		writeError(w, http.StatusNotFound, "no durable ledger configured (start the server with -ledger)")
		return
	}
	root, size := s.ledger.tree.Root()
	writeJSON(w, http.StatusOK, RootResponse{Size: size, Root: hex.EncodeToString(root[:])})
}

func (s *Server) handleProof(w http.ResponseWriter, r *http.Request) {
	if s.ledger == nil {
		writeError(w, http.StatusNotFound, "no durable ledger configured (start the server with -ledger)")
		return
	}
	seq, err := strconv.ParseUint(r.URL.Query().Get("seq"), 10, 64)
	if err != nil || seq == 0 {
		writeError(w, http.StatusBadRequest, "missing or malformed ?seq= parameter (1-based ledger sequence number)")
		return
	}
	p, err := s.ledger.tree.Prove(seq - 1)
	if err != nil {
		writeError(w, http.StatusNotFound, "no committed record with seq %d (ledger size %d)", seq, s.ledger.tree.Size())
		return
	}
	path := make([]string, len(p.Path))
	for i, h := range p.Path {
		path[i] = hex.EncodeToString(h[:])
	}
	writeJSON(w, http.StatusOK, ProofResponse{
		Seq:  seq,
		Size: p.Size,
		Leaf: hex.EncodeToString(p.LeafHash[:]),
		Path: path,
		Root: hex.EncodeToString(p.Root[:]),
	})
}
