// Package experiments regenerates every table and figure of the DPBench
// paper's evaluation (Section 7). Each exported function corresponds to one
// artifact — Figures 1a/1b, 2a/2b/2c, Tables 3a/3b, and the finding-specific
// studies — and prints the same rows/series the paper reports. The Options
// struct trades grid size for runtime: Quick mode reproduces the qualitative
// shape of every result on a laptop in minutes, Full mode runs the paper's
// grid (hours).
package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"

	"dpbench/internal/algo"
	"dpbench/internal/core"
	"dpbench/internal/dataset"
	"dpbench/internal/noise"
	"dpbench/internal/stats"
	"dpbench/internal/workload"
)

// Options controls experiment size and output.
type Options struct {
	// Out receives the rendered tables.
	Out io.Writer
	// Quick trims domains, trial counts and algorithm rosters so every
	// experiment finishes in seconds to minutes while preserving orderings.
	Quick bool
	// Seed fixes all randomness.
	Seed int64
	// Workers bounds the worker pool that runs independent grid cells
	// (dataset x scale, and the sample/trial/algorithm cells within each)
	// concurrently. <= 0 means runtime.GOMAXPROCS(0). Results are
	// bit-identical for every worker count.
	Workers int
	// Audit runs every trial through the privacy-budget ledger audit: any
	// mechanism whose spends do not sum to exactly eps (or stray from its
	// declared composition plan) fails the experiment. Output values are
	// bit-identical with and without auditing.
	Audit bool
	// Domain1D, when positive, overrides the 1D domain size of every
	// experiment (dpbench -n). The planned mechanisms scale to million-bin
	// domains; see BenchmarkLargeDomain.
	Domain1D int
	// Ctx, when non-nil, cancels a long experiment grid early: in-flight
	// cells finish, no new cells start, and the context's error propagates
	// out of the experiment. Nil means context.Background().
	Ctx context.Context
	// Sampler selects the noise-sampling family (dpbench -sampler). The zero
	// value is the bit-identical legacy default; noise.SamplerFast runs the
	// table-accelerated samplers — same distributions, different stream, so
	// figures shift within their error bars but orderings are preserved.
	Sampler noise.SamplerVersion
}

func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) samples() int {
	if o.Quick {
		return 2
	}
	return 5
}

func (o Options) trials() int {
	if o.Quick {
		return 3
	}
	return 10
}

func (o Options) domain1D() int {
	if o.Domain1D > 0 {
		return o.Domain1D
	}
	if o.Quick {
		return 512
	}
	return 4096
}

func (o Options) domain2D() int {
	if o.Quick {
		return 32
	}
	return 128
}

func (o Options) queries2D() int {
	if o.Quick {
		return 200
	}
	return 2000
}

func (o Options) scales1D() []int {
	return []int{1e3, 1e5, 1e7}
}

func (o Options) scales2D() []int {
	if o.Quick {
		return []int{1e4, 1e6, 1e7}
	}
	return []int{1e4, 1e6, 1e8}
}

func (o Options) datasets1D() []dataset.Dataset {
	all := dataset.Registry1D()
	if !o.Quick {
		return all
	}
	// A shape-diverse six: sparse, dense, spiky, smooth.
	keep := map[string]bool{"ADULT": true, "HEPPH": true, "TRACE": true, "BIDS-ALL": true, "MD-SAL": true, "PATENT": true}
	var out []dataset.Dataset
	for _, d := range all {
		if keep[d.Name] {
			out = append(out, d)
		}
	}
	return out
}

func (o Options) datasets2D() []dataset.Dataset {
	all := dataset.Registry2D()
	if !o.Quick {
		return all
	}
	keep := map[string]bool{"GOWALLA": true, "ADULT-2D": true, "SF-CABS-S": true, "BJ-CABS-E": true, "STROKE": true}
	var out []dataset.Dataset
	for _, d := range all {
		if keep[d.Name] {
			out = append(out, d)
		}
	}
	return out
}

// Eps is the privacy budget all scale-sweep figures fix (the paper uses 0.1
// throughout and varies scale, justified by scale-epsilon exchangeability).
const Eps = 0.1

// algorithms1D is the roster of Figure 1a, in the paper's column order.
func algorithms1D() []algo.Algorithm {
	return roster("IDENTITY", "HB", "MWEM*", "DAWA", "PHP", "MWEM", "EFPA", "DPCUBE", "AHP*", "SF", "UNIFORM")
}

// algorithms2D is the roster of Figure 1b.
func algorithms2D() []algo.Algorithm {
	return roster("IDENTITY", "HB", "AGRID", "MWEM", "MWEM*", "DAWA", "QUADTREE", "UGRID", "DPCUBE", "AHP", "UNIFORM")
}

func roster(names ...string) []algo.Algorithm {
	out := make([]algo.Algorithm, 0, len(names))
	for _, n := range names {
		a, err := algo.New(n)
		if err != nil {
			panic(err)
		}
		out = append(out, a)
	}
	return out
}

// CellResult is the aggregate for one (algorithm, dataset, scale) cell.
type CellResult struct {
	Algorithm string
	Dataset   string
	Scale     int
	Mean      float64
	P95       float64
}

// sweep runs algorithms over datasets x scales for one dimensionality and
// returns every cell, plus the raw per-setting results for t-tests.
type sweepResult struct {
	cells []CellResult
	// raw[scale][dataset] holds full AlgResults for competitiveness tests.
	raw map[int]map[string][]core.AlgResult
}

func (o Options) sweep(algos []algo.Algorithm, datasets []dataset.Dataset, dims []int, scales []int, w *workload.Workload) (*sweepResult, error) {
	// Every (scale, dataset) grid cell is an independent experiment, so the
	// whole grid fans out over one worker pool; each cell additionally fans
	// its (sample, trial, algorithm) cells out via RunParallel. The worker
	// budget is split across the two levels — grid * per-cell <= workers —
	// so -workers stays a real bound: a wide grid parallelizes across cells,
	// a one-cell grid (e.g. Fig2c's per-domain sweeps) inside the cell.
	// per[c] is the pre-sized slot for cell c, so collection order never
	// affects output.
	workers := o.workers()
	nds := len(datasets)
	per := make([][]core.AlgResult, len(scales)*nds)
	grid := workers
	if grid > len(per) {
		grid = len(per)
	}
	err := core.ParallelForCtx(o.ctx(), grid, len(per), func(c int) error {
		scale, d := scales[c/nds], datasets[c%nds]
		cfg := core.Config{
			Dataset:     d,
			Dims:        dims,
			Scale:       scale,
			Eps:         Eps,
			Workload:    w,
			Algorithms:  algos,
			DataSamples: o.samples(),
			Trials:      o.trials(),
			Seed:        o.Seed + int64(scale),
			Parallelism: workers / grid,
			Audit:       o.Audit,
			Sampler:     o.Sampler,
		}
		results, err := core.RunParallel(o.ctx(), cfg, 0)
		if err != nil {
			return err
		}
		per[c] = results
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Assemble in the serial (scale-major, dataset-minor) order.
	out := &sweepResult{raw: map[int]map[string][]core.AlgResult{}}
	for si, scale := range scales {
		out.raw[scale] = map[string][]core.AlgResult{}
		for di, d := range datasets {
			results := per[si*nds+di]
			out.raw[scale][d.Name] = results
			for _, r := range results {
				out.cells = append(out.cells, CellResult{
					Algorithm: r.Name, Dataset: d.Name, Scale: scale,
					Mean: r.MeanError(), P95: r.P95Error(),
				})
			}
		}
	}
	return out, nil
}

// printScaleFigure renders a Figure-1-style panel set: per scale, one row per
// algorithm with the mean over datasets (the white diamond) and the min/max
// across datasets (the spread of black dots), in log10 scaled error.
func printScaleFigure(out io.Writer, title string, algos []algo.Algorithm, scales []int, cells []CellResult) {
	fmt.Fprintf(out, "\n%s\n", title)
	fmt.Fprintf(out, "%-10s", "ALGORITHM")
	for _, s := range scales {
		fmt.Fprintf(out, "  %22s", fmt.Sprintf("scale=%g (log10 err)", float64(s)))
	}
	fmt.Fprintln(out)
	for _, a := range algos {
		fmt.Fprintf(out, "%-10s", a.Name())
		for _, s := range scales {
			var vals []float64
			for _, c := range cells {
				if c.Algorithm == a.Name() && c.Scale == s {
					vals = append(vals, c.Mean)
				}
			}
			mean := stats.Mean(vals)
			lo, hi := minMax(vals)
			fmt.Fprintf(out, "  %6.2f [%6.2f,%6.2f]", log10(mean), log10(lo), log10(hi))
		}
		fmt.Fprintln(out)
	}
}

func log10(x float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	return math.Log10(x)
}

func minMax(vals []float64) (lo, hi float64) {
	if len(vals) == 0 {
		return 0, 0
	}
	lo, hi = vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Fig1a reproduces Figure 1a: 1D error versus scale at domain 4096 on the
// Prefix workload, every 1D algorithm, every 1D dataset.
func Fig1a(o Options) (*sweepResult, error) {
	n := o.domain1D()
	res, err := o.sweep(algorithms1D(), o.datasets1D(), []int{n}, o.scales1D(), workload.Prefix(n))
	if err != nil {
		return nil, err
	}
	printScaleFigure(o.Out, fmt.Sprintf("Figure 1a — 1D, domain=%d, workload=Prefix, eps=%g", n, Eps),
		algorithms1D(), o.scales1D(), res.cells)
	return res, nil
}

// Fig1b reproduces Figure 1b: 2D error versus scale on random range queries.
func Fig1b(o Options) (*sweepResult, error) {
	side := o.domain2D()
	w := workload.RandomRange2D(side, side, o.queries2D(), newRand(o.Seed+1))
	res, err := o.sweep(algorithms2D(), o.datasets2D(), []int{side, side}, o.scales2D(), w)
	if err != nil {
		return nil, err
	}
	printScaleFigure(o.Out, fmt.Sprintf("Figure 1b — 2D, domain=%dx%d, workload=%d random ranges, eps=%g",
		side, side, o.queries2D(), Eps), algorithms2D(), o.scales2D(), res.cells)
	return res, nil
}

// Fig2a reproduces Figure 2a: 1D error by dataset shape at the smallest
// scale, for the baselines plus the competitive data-dependent algorithms.
func Fig2a(o Options) error {
	n := o.domain1D()
	algos := roster("UNIFORM", "DAWA", "EFPA", "HB", "MWEM", "MWEM*", "PHP", "IDENTITY")
	scale := int(1e3)
	res, err := o.sweep(algos, o.datasets1D(), []int{n}, []int{scale}, workload.Prefix(n))
	if err != nil {
		return err
	}
	printShapeFigure(o.Out, fmt.Sprintf("Figure 2a — 1D error by shape (scale=%d, domain=%d)", scale, n), algos, res.cells)
	return nil
}

// Fig2b reproduces Figure 2b: 2D error by dataset shape at scale 1e4.
func Fig2b(o Options) error {
	side := o.domain2D()
	algos := roster("UNIFORM", "AGRID", "DAWA", "HB", "IDENTITY")
	w := workload.RandomRange2D(side, side, o.queries2D(), newRand(o.Seed+2))
	scale := int(1e4)
	res, err := o.sweep(algos, o.datasets2D(), []int{side, side}, []int{scale}, w)
	if err != nil {
		return err
	}
	printShapeFigure(o.Out, fmt.Sprintf("Figure 2b — 2D error by shape (scale=%d, domain=%dx%d)", scale, side, side), algos, res.cells)
	return nil
}

func printShapeFigure(out io.Writer, title string, algos []algo.Algorithm, cells []CellResult) {
	fmt.Fprintf(out, "\n%s\n", title)
	datasets := map[string]bool{}
	for _, c := range cells {
		datasets[c.Dataset] = true
	}
	names := make([]string, 0, len(datasets))
	for d := range datasets {
		names = append(names, d)
	}
	sort.Strings(names)
	fmt.Fprintf(out, "%-12s", "DATASET")
	for _, a := range algos {
		fmt.Fprintf(out, "  %9s", a.Name())
	}
	fmt.Fprintln(out)
	for _, d := range names {
		fmt.Fprintf(out, "%-12s", d)
		for _, a := range algos {
			for _, c := range cells {
				if c.Dataset == d && c.Algorithm == a.Name() {
					fmt.Fprintf(out, "  %9.2f", log10(c.Mean))
					break
				}
			}
		}
		fmt.Fprintln(out)
	}
}

// Fig2c reproduces Figure 2c: 2D error versus domain size for two shapes at
// two scales, for IDENTITY, Hb, AGrid and DAWA.
func Fig2c(o Options) error {
	algos := roster("IDENTITY", "HB", "AGRID", "DAWA")
	sides := []int{32, 64, 128}
	if !o.Quick {
		sides = []int{32, 64, 128, 256}
	}
	scales := []int{1e4, 1e6}
	dsNames := []string{"ADULT-2D", "BJ-CABS-E"}
	fmt.Fprintf(o.Out, "\nFigure 2c — 2D error vs domain size (eps=%g)\n", Eps)
	for _, dn := range dsNames {
		d, err := dataset.ByName(dn)
		if err != nil {
			return err
		}
		for _, scale := range scales {
			fmt.Fprintf(o.Out, "%s scale=%g:\n", dn, float64(scale))
			fmt.Fprintf(o.Out, "  %-10s", "ALGORITHM")
			for _, side := range sides {
				fmt.Fprintf(o.Out, "  %9s", fmt.Sprintf("%dx%d", side, side))
			}
			fmt.Fprintln(o.Out)
			rows := map[string][]float64{}
			for _, side := range sides {
				w := workload.RandomRange2D(side, side, o.queries2D(), newRand(o.Seed+3))
				res, err := o.sweep(algos, []dataset.Dataset{d}, []int{side, side}, []int{scale}, w)
				if err != nil {
					return err
				}
				for _, c := range res.cells {
					rows[c.Algorithm] = append(rows[c.Algorithm], c.Mean)
				}
			}
			for _, a := range algos {
				fmt.Fprintf(o.Out, "  %-10s", a.Name())
				for _, v := range rows[a.Name()] {
					fmt.Fprintf(o.Out, "  %9.2f", log10(v))
				}
				fmt.Fprintln(o.Out)
			}
		}
	}
	return nil
}

// Table3 reproduces Tables 3a (1D) and 3b (2D): for each scale, the number
// of datasets on which each algorithm is competitive under the t-test
// standard of Section 5.3.
func Table3(o Options, twoD bool) (map[int]map[string]int, error) {
	var res *sweepResult
	var err error
	var title string
	if twoD {
		res, err = Fig1bData(o)
		title = fmt.Sprintf("Table 3b — datasets where competitive (2D, domain=%dx%d)", o.domain2D(), o.domain2D())
	} else {
		res, err = Fig1aData(o)
		title = fmt.Sprintf("Table 3a — datasets where competitive (1D, domain=%d)", o.domain1D())
	}
	if err != nil {
		return nil, err
	}
	counts := map[int]map[string]int{}
	for scale, perDataset := range res.raw {
		counts[scale] = map[string]int{}
		for _, results := range perDataset {
			for _, name := range core.CompetitiveSet(results, 0.05) {
				counts[scale][name]++
			}
		}
	}
	fmt.Fprintf(o.Out, "\n%s\n", title)
	scales := make([]int, 0, len(counts))
	for s := range counts {
		scales = append(scales, s)
	}
	sort.Ints(scales)
	algos := map[string]bool{}
	for _, m := range counts {
		for a := range m {
			algos[a] = true
		}
	}
	names := make([]string, 0, len(algos))
	for a := range algos {
		names = append(names, a)
	}
	sort.Strings(names)
	fmt.Fprintf(o.Out, "%-10s", "ALGORITHM")
	for _, s := range scales {
		fmt.Fprintf(o.Out, "  %8s", fmt.Sprintf("%g", float64(s)))
	}
	fmt.Fprintln(o.Out)
	for _, a := range names {
		fmt.Fprintf(o.Out, "%-10s", a)
		for _, s := range scales {
			if c := counts[s][a]; c > 0 {
				fmt.Fprintf(o.Out, "  %8d", c)
			} else {
				fmt.Fprintf(o.Out, "  %8s", "")
			}
		}
		fmt.Fprintln(o.Out)
	}
	return counts, nil
}

// Fig1aData runs the Figure 1a sweep without printing the figure (used by
// Table 3a and the regret computation).
func Fig1aData(o Options) (*sweepResult, error) {
	n := o.domain1D()
	return o.sweep(algorithms1D(), o.datasets1D(), []int{n}, o.scales1D(), workload.Prefix(n))
}

// Fig1bData runs the Figure 1b sweep without printing the figure.
func Fig1bData(o Options) (*sweepResult, error) {
	side := o.domain2D()
	w := workload.RandomRange2D(side, side, o.queries2D(), newRand(o.Seed+1))
	return o.sweep(algorithms2D(), o.datasets2D(), []int{side, side}, o.scales2D(), w)
}

// Regret reproduces the Section 7.2 regret measure: the geometric mean, over
// every (dataset, scale) setting, of each algorithm's error relative to the
// per-setting oracle. The paper reports DAWA 1.32 (1D) and 1.73 (2D).
func Regret(o Options, twoD bool) (map[string]float64, error) {
	var res *sweepResult
	var err error
	var algos []algo.Algorithm
	if twoD {
		res, err = Fig1bData(o)
		algos = algorithms2D()
	} else {
		res, err = Fig1aData(o)
		algos = algorithms1D()
	}
	if err != nil {
		return nil, err
	}
	names := make([]string, len(algos))
	for i, a := range algos {
		names[i] = a.Name()
	}
	// Iterate settings in sorted (scale, dataset) order: regret is a
	// geometric mean, and float products are order-sensitive at the bit
	// level, so map order here would leak into the printed table.
	scales := make([]int, 0, len(res.raw))
	for scale := range res.raw {
		scales = append(scales, scale)
	}
	sort.Ints(scales)
	var settings [][]float64
	for _, scale := range scales {
		perDataset := res.raw[scale]
		datasets := make([]string, 0, len(perDataset))
		for name := range perDataset {
			datasets = append(datasets, name)
		}
		sort.Strings(datasets)
		for _, name := range datasets {
			results := perDataset[name]
			row := make([]float64, len(results))
			for i, r := range results {
				row[i] = r.MeanError()
			}
			settings = append(settings, row)
		}
	}
	reg := core.RegretTable(names, settings)
	dim := "1D"
	if twoD {
		dim = "2D"
	}
	fmt.Fprintf(o.Out, "\nRegret (%s, Section 7.2 — paper: DAWA 1.32 on 1D, 1.73 on 2D)\n", dim)
	ordered := append([]string(nil), names...)
	sort.Slice(ordered, func(i, j int) bool { return reg[ordered[i]] < reg[ordered[j]] })
	for _, nm := range ordered {
		fmt.Fprintf(o.Out, "  %-10s %6.2f\n", nm, reg[nm])
	}
	return reg, nil
}
