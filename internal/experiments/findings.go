package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"dpbench/internal/algo"
	"dpbench/internal/core"
	"dpbench/internal/dataset"
	"dpbench/internal/stats"
	"dpbench/internal/workload"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Finding6 reproduces the parameter-sensitivity study of Section 7.3: AHP,
// DAWA and MWEM on MEDCOST at scale 1e5, measuring the best and worst error
// over parameter settings that were each optimal in some other scenario.
// The paper reports worst/best ratios up to ~2.5x (DAWA) and ~7.5x
// (MWEM, AHP).
func Finding6(o Options) (map[string]float64, error) {
	n := o.domain1D()
	d, err := dataset.ByName("MEDCOST")
	if err != nil {
		return nil, err
	}
	scale := int(1e5)
	w := workload.Prefix(n)

	variants := map[string][]algo.Algorithm{
		"MWEM": {
			&algo.MWEM{T: 2, UpdateSweeps: 2},
			&algo.MWEM{T: 10, UpdateSweeps: 2},
			&algo.MWEM{T: 40, UpdateSweeps: 2},
			&algo.MWEM{T: 100, UpdateSweeps: 2},
		},
		"AHP": {
			&algo.AHP{Rho: 0.15, Eta: 0.1},
			&algo.AHP{Rho: 0.3, Eta: 0.2},
			&algo.AHP{Rho: 0.5, Eta: 0.35},
			&algo.AHP{Rho: 0.6, Eta: 0.5},
		},
		"DAWA": {
			&algo.DAWA{Rho: 0.1, B: 2},
			&algo.DAWA{Rho: 0.25, B: 2},
			&algo.DAWA{Rho: 0.5, B: 2},
		},
	}
	ratios := map[string]float64{}
	fmt.Fprintf(o.Out, "\nFinding 6 — parameter sensitivity on MEDCOST at scale %d\n", scale)
	names := make([]string, 0, len(variants))
	for name := range variants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		cfg := core.Config{
			Dataset: d, Dims: []int{n}, Scale: scale, Eps: Eps,
			Workload: w, Algorithms: variants[name],
			DataSamples: o.samples(), Trials: o.trials(), Seed: o.Seed + 60, Audit: o.Audit,
			Sampler: o.Sampler,
		}
		results, err := core.RunParallel(o.ctx(), cfg, o.workers())
		if err != nil {
			return nil, err
		}
		best, worst := results[0].MeanError(), results[0].MeanError()
		for _, r := range results[1:] {
			if m := r.MeanError(); m < best {
				best = m
			} else if m > worst {
				worst = m
			}
		}
		ratios[name] = worst / best
		fmt.Fprintf(o.Out, "  %-6s best %.3g  worst %.3g  ratio %.2fx\n", name, best, worst, ratios[name])
	}
	return ratios, nil
}

// Finding7 reproduces the MWEM/MWEM* error-ratio table of Section 7.3: the
// ratio of static-T MWEM error to trained-T MWEM* error, averaged over
// datasets, per scale. The paper's row: 1.799, .951, 1.063, 5.166, 12.000,
// 27.875 for scales 1e3..1e8 — near parity at small scales, large gains at
// large scales.
func Finding7(o Options) (map[int]float64, error) {
	n := o.domain1D()
	w := workload.Prefix(n)
	scales := []int{1e3, 1e4, 1e5, 1e6}
	if !o.Quick {
		scales = []int{1e3, 1e4, 1e5, 1e6, 1e7, 1e8}
	}
	mwem, _ := algo.New("MWEM")
	mwemStar, _ := algo.New("MWEM*")
	algos := []algo.Algorithm{mwem, mwemStar}
	out := map[int]float64{}
	fmt.Fprintf(o.Out, "\nFinding 7 — error ratio MWEM/MWEM* by scale (eps=%g)\n", Eps)
	for _, scale := range scales {
		var ratios []float64
		for _, d := range o.datasets1D() {
			cfg := core.Config{
				Dataset: d, Dims: []int{n}, Scale: scale, Eps: Eps,
				Workload: w, Algorithms: algos,
				DataSamples: o.samples(), Trials: o.trials(), Seed: o.Seed + int64(scale) + 70, Audit: o.Audit,
				Sampler: o.Sampler,
			}
			results, err := core.RunParallel(o.ctx(), cfg, o.workers())
			if err != nil {
				return nil, err
			}
			if s := results[1].MeanError(); s > 0 {
				ratios = append(ratios, results[0].MeanError()/s)
			}
		}
		out[scale] = stats.Mean(ratios)
		fmt.Fprintf(o.Out, "  scale %-10g ratio %6.3f\n", float64(scale), out[scale])
	}
	return out, nil
}

// Finding8 reproduces the risk-averse evaluation of Section 7.4: settings
// where the best algorithm by mean error differs from the best by 95th
// percentile.
func Finding8(o Options) (int, error) {
	res, err := Fig1aData(o)
	if err != nil {
		return 0, err
	}
	flips := 0
	total := 0
	fmt.Fprintf(o.Out, "\nFinding 8 — mean-best vs p95-best flips (1D)\n")
	for scale, perDataset := range res.raw {
		for ds, results := range perDataset {
			total++
			mb := core.BestByMean(results)
			pb := core.BestByP95(results)
			if mb != pb {
				flips++
				fmt.Fprintf(o.Out, "  scale %-9g %-12s mean-best=%-9s p95-best=%s\n", float64(scale), ds, mb, pb)
			}
		}
	}
	fmt.Fprintf(o.Out, "  %d of %d settings flip winner under the risk-averse measure\n", flips, total)
	return flips, nil
}

// Finding9 reproduces the bias study of Section 7.4: bias share of total
// error at a large eps*scale signal for the algorithms the paper proves
// inconsistent (MWEM, PHP, UNIFORM) against consistent references.
func Finding9(o Options) (map[string]core.BiasVariance, error) {
	n := o.domain1D()
	d, err := dataset.ByName("TRACE")
	if err != nil {
		return nil, err
	}
	rng := newRand(o.Seed + 90)
	x, err := d.Generate(rng, 1e6, n)
	if err != nil {
		return nil, err
	}
	w := workload.Prefix(n)
	out := map[string]core.BiasVariance{}
	fmt.Fprintf(o.Out, "\nFinding 9 — bias share of error at scale 1e6, eps=%g\n", Eps)
	for _, name := range []string{"UNIFORM", "MWEM", "PHP", "IDENTITY", "HB", "DAWA"} {
		a, err := algo.New(name)
		if err != nil {
			return nil, err
		}
		bv, err := core.MeasureBias(a, x, w, Eps, o.trials()*4, o.Seed+91)
		if err != nil {
			return nil, err
		}
		out[name] = bv
		fmt.Fprintf(o.Out, "  %-9s bias^2 %.3g  variance %.3g  bias share %5.1f%%\n",
			name, bv.Bias2, bv.Variance, 100*bv.BiasShare())
	}
	return out, nil
}

// Finding10 reproduces the baseline comparison of Section 7.5: per scale,
// the algorithms whose dataset-averaged error is worse than IDENTITY and
// UNIFORM.
func Finding10(o Options) error {
	res, err := Fig1aData(o)
	if err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "\nFinding 10 — algorithms beaten by baselines (1D, dataset-averaged)\n")
	for _, scale := range o.scales1D() {
		// Collect per-dataset errors in sorted dataset order: stats.Mean
		// sums floats, so map order here would make the averages (and the
		// beaten-by sets near a tie) nondeterministic.
		perDataset := res.raw[scale]
		datasets := make([]string, 0, len(perDataset))
		for name := range perDataset {
			datasets = append(datasets, name)
		}
		sort.Strings(datasets)
		avg := map[string][]float64{}
		for _, name := range datasets {
			for _, r := range perDataset[name] {
				avg[r.Name] = append(avg[r.Name], r.MeanError())
			}
		}
		idErr := stats.Mean(avg["IDENTITY"])
		uniErr := stats.Mean(avg["UNIFORM"])
		var beatenByID, beatenByUni []string
		for name, errs := range avg {
			if name == "IDENTITY" || name == "UNIFORM" {
				continue
			}
			m := stats.Mean(errs)
			if m > idErr {
				beatenByID = append(beatenByID, name)
			}
			if m > uniErr {
				beatenByUni = append(beatenByUni, name)
			}
		}
		sort.Strings(beatenByID)
		sort.Strings(beatenByUni)
		fmt.Fprintf(o.Out, "  scale %-9g beaten by IDENTITY: %v\n", float64(scale), beatenByID)
		fmt.Fprintf(o.Out, "  scale %-9g beaten by UNIFORM:  %v\n", float64(scale), beatenByUni)
	}
	return nil
}

// Exchangeability runs Definition 4's empirical check over the roster
// (Section 5.5 / Appendix C: all algorithms but SF are exchangeable; SF
// empirically behaves so).
func Exchangeability(o Options) error {
	n := 256
	d, err := dataset.ByName("SEARCH")
	if err != nil {
		return err
	}
	shape, err := d.Shape(n)
	if err != nil {
		return err
	}
	w := workload.Prefix(n)
	fmt.Fprintf(o.Out, "\nScale-epsilon exchangeability (Definition 4): err(s,eps) vs err(10s,eps/10)\n")
	for _, name := range []string{"IDENTITY", "HB", "PRIVELET", "GREEDY-H", "H", "UNIFORM", "DAWA", "AHP", "PHP", "EFPA", "MWEM", "DPCUBE", "SF"} {
		a, err := algo.New(name)
		if err != nil {
			return err
		}
		res, err := core.CheckExchangeability(a, shape, w, 20_000, 0.4, 10, o.trials()*3, 1.0, o.Seed+95)
		if err != nil {
			return err
		}
		fmt.Fprintf(o.Out, "  %-9s ratio %5.2f  (ok within tol: %v)\n", name, res.Ratio, res.WithinTolerance)
	}
	return nil
}

// Consistency runs Definition 5's empirical check over the roster and prints
// the residual error at the largest eps relative to the smallest (Table 1's
// "Consistent" column).
func Consistency(o Options) error {
	n := 128
	d, err := dataset.ByName("TRACE")
	if err != nil {
		return err
	}
	rng := newRand(o.Seed + 96)
	x, err := d.Generate(rng, 100_000, n)
	if err != nil {
		return err
	}
	w := workload.Prefix(n)
	sweep := []float64{0.01, 0.1, 1, 100, 10_000}
	fmt.Fprintf(o.Out, "\nConsistency (Definition 5): residual error at eps=1e4 vs eps=0.01\n")
	for _, name := range []string{"IDENTITY", "PRIVELET", "H", "HB", "GREEDY-H", "DAWA", "AHP", "DPCUBE", "EFPA", "SF", "UNIFORM", "MWEM", "PHP"} {
		a, err := algo.New(name)
		if err != nil {
			return err
		}
		res, err := core.CheckConsistency(a, x, w, sweep, o.trials(), 0.01, o.Seed+97)
		if err != nil {
			return err
		}
		verdict := "consistent"
		if !res.Decaying {
			verdict = "BIAS FLOOR"
		}
		fmt.Fprintf(o.Out, "  %-9s residual %8.2e  %s\n", name, res.ResidualAtMax, verdict)
	}
	return nil
}
