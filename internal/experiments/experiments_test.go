package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tinyOptions shrinks everything to smoke-test size: these tests validate
// plumbing and output format end-to-end, not statistical conclusions (the
// benchmark-grade runs live in bench_test.go and cmd/dpbench).
func tinyOptions(buf *bytes.Buffer) Options {
	return Options{Out: buf, Quick: true, Seed: 7}
}

func TestOptionsGrids(t *testing.T) {
	quick := Options{Quick: true}
	full := Options{}
	if quick.domain1D() >= full.domain1D() {
		t.Fatal("quick 1D domain should be smaller")
	}
	if quick.samples() >= full.samples() || quick.trials() >= full.trials() {
		t.Fatal("quick mode should use fewer samples/trials")
	}
	if full.domain2D() != 128 || full.queries2D() != 2000 {
		t.Fatalf("full 2D grid %dx%d/%d queries does not match Section 6",
			full.domain2D(), full.domain2D(), full.queries2D())
	}
	if len(quick.datasets1D()) == 0 || len(quick.datasets2D()) == 0 {
		t.Fatal("quick dataset rosters empty")
	}
	if len(full.datasets1D()) != 18 || len(full.datasets2D()) != 9 {
		t.Fatal("full mode must use every Table 2 dataset")
	}
}

func TestRostersMatchFigure1(t *testing.T) {
	a1 := algorithms1D()
	if len(a1) != 11 {
		t.Fatalf("Figure 1a roster has %d algorithms, want 11", len(a1))
	}
	a2 := algorithms2D()
	if len(a2) != 11 {
		t.Fatalf("Figure 1b roster has %d algorithms, want 11", len(a2))
	}
	for _, a := range a1 {
		if !a.Supports(1) {
			t.Fatalf("%s in the 1D roster does not support 1D", a.Name())
		}
	}
	for _, a := range a2 {
		if !a.Supports(2) {
			t.Fatalf("%s in the 2D roster does not support 2D", a.Name())
		}
	}
}

func TestFig1aSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	var buf bytes.Buffer
	res, err := Fig1a(tinyOptions(&buf))
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 1a") {
		t.Fatalf("missing title in output:\n%s", out)
	}
	for _, name := range []string{"IDENTITY", "HB", "DAWA", "UNIFORM"} {
		if !strings.Contains(out, name) {
			t.Fatalf("missing %s row", name)
		}
	}
	// Every (algorithm, dataset, scale) cell must be present.
	want := 11 * len(tinyOptions(&buf).datasets1D()) * 3
	if len(res.cells) != want {
		t.Fatalf("%d cells, want %d", len(res.cells), want)
	}
	for _, c := range res.cells {
		if c.Mean <= 0 || c.P95 < c.Mean*0 {
			t.Fatalf("bad cell %+v", c)
		}
	}
}

func TestFinding6Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	var buf bytes.Buffer
	ratios, err := Finding6(tinyOptions(&buf))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"MWEM", "AHP", "DAWA"} {
		r, ok := ratios[name]
		if !ok {
			t.Fatalf("missing %s", name)
		}
		if r < 1 {
			t.Fatalf("%s worst/best ratio %v < 1", name, r)
		}
	}
}

func TestExchangeabilitySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	var buf bytes.Buffer
	if err := Exchangeability(tinyOptions(&buf)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "IDENTITY") {
		t.Fatal("missing output rows")
	}
}

func TestConsistencySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	var buf bytes.Buffer
	if err := Consistency(tinyOptions(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// UNIFORM must be flagged as carrying a bias floor.
	lines := strings.Split(out, "\n")
	foundUniform := false
	for _, l := range lines {
		if strings.Contains(l, "UNIFORM") {
			foundUniform = true
			if !strings.Contains(l, "BIAS FLOOR") {
				t.Fatalf("UNIFORM not flagged inconsistent: %q", l)
			}
		}
		if strings.Contains(l, "IDENTITY") && strings.Contains(l, "BIAS FLOOR") {
			t.Fatalf("IDENTITY flagged inconsistent: %q", l)
		}
	}
	if !foundUniform {
		t.Fatal("UNIFORM row missing")
	}
}

func TestTable3Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	var buf bytes.Buffer
	counts, err := Table3(tinyOptions(&buf), false)
	if err != nil {
		t.Fatal(err)
	}
	opt := tinyOptions(&buf)
	nDatasets := len(opt.datasets1D())
	for scale, perAlg := range counts {
		total := 0
		for _, c := range perAlg {
			if c < 0 || c > nDatasets {
				t.Fatalf("scale %d: count %d out of range", scale, c)
			}
			total += c
		}
		if total < nDatasets {
			t.Fatalf("scale %d: only %d competitive entries over %d datasets (each dataset has >= 1)", scale, total, nDatasets)
		}
	}
}

func TestRegretSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	var buf bytes.Buffer
	reg, err := Regret(tinyOptions(&buf), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(reg) != 11 {
		t.Fatalf("regret for %d algorithms, want 11", len(reg))
	}
	for name, r := range reg {
		if r < 1-1e-9 {
			t.Fatalf("%s regret %v below 1 (impossible)", name, r)
		}
	}
}
