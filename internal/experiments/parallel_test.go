package experiments

import (
	"io"
	"testing"

	"dpbench/internal/dataset"
	"dpbench/internal/workload"
)

// sweepOptions returns Options for a tiny grid with the given worker count.
func sweepOptions(workers int) Options {
	return Options{Out: io.Discard, Quick: true, Seed: 7, Workers: workers}
}

// tinySweep runs a small but multi-cell (2 scales x 2 datasets) grid.
func tinySweep(t *testing.T, o Options) *sweepResult {
	t.Helper()
	algos := roster("IDENTITY", "UNIFORM", "HB")
	all := dataset.Registry1D()
	ds := []dataset.Dataset{all[0], all[1]}
	res, err := o.sweep(algos, ds, []int{128}, []int{1e3, 1e4}, workload.Prefix(128))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSweepDeterministicAcrossWorkerCounts asserts the grid-level guarantee:
// the sweep's cells and raw results are bit-identical for 1, 2, and 8
// workers, in the same (scale-major, dataset-minor) order.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	base := tinySweep(t, sweepOptions(1))
	for _, workers := range []int{2, 8} {
		got := tinySweep(t, sweepOptions(workers))
		if len(got.cells) != len(base.cells) {
			t.Fatalf("workers=%d: %d cells, want %d", workers, len(got.cells), len(base.cells))
		}
		for i := range base.cells {
			if got.cells[i] != base.cells[i] {
				t.Fatalf("workers=%d: cell %d = %+v, want %+v", workers, i, got.cells[i], base.cells[i])
			}
		}
		for scale, perDataset := range base.raw {
			for name, results := range perDataset {
				other := got.raw[scale][name]
				if len(other) != len(results) {
					t.Fatalf("workers=%d: raw[%d][%s] has %d results, want %d",
						workers, scale, name, len(other), len(results))
				}
				for i := range results {
					for j := range results[i].Errors {
						if other[i].Errors[j] != results[i].Errors[j] {
							t.Fatalf("workers=%d: raw[%d][%s][%s] observation %d differs",
								workers, scale, name, results[i].Name, j)
						}
					}
				}
			}
		}
	}
}

// TestWorkersDefault: Workers <= 0 resolves to a positive pool size.
func TestWorkersDefault(t *testing.T) {
	if w := (Options{}).workers(); w < 1 {
		t.Fatalf("default workers = %d, want >= 1", w)
	}
	if w := (Options{Workers: 3}).workers(); w != 3 {
		t.Fatalf("workers = %d, want 3", w)
	}
}
