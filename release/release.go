// Package release is the public registry of dpbench's differentially
// private release mechanisms and the Plan/Execute machinery to run them.
//
// Mechanisms are obtained from the registry by benchmark name:
//
//	m, err := release.New("DAWA")
//	est, err := release.Run(m, x, w, 0.1, rng)
//
// Construction takes functional options instead of positional parameters, so
// a configured variant reads as what it changes:
//
//	m, err := release.New("MWEM",
//		release.WithMWEMRounds(20),
//		release.WithSideInfoRepair(0.05))
//
// For repeated trials on one (data, workload, epsilon) cell, plan once and
// execute many times — structure building is amortized out of the trial
// loop, and one Plan may be executed concurrently from many goroutines:
//
//	p, err := release.NewPlan(m, x, w, eps)
//	err = p.Execute(privacy.NewMeter(eps, rng), out)
//
// Mechanism and Plan alias the internal interfaces, so values obtained here
// are exactly what the benchmark runner, the audit machinery, and the
// serving layer consume.
package release

import (
	"fmt"
	"math/rand"
	"sync"

	"dpbench/internal/algo"
	"dpbench/internal/noise"
	"dpbench/internal/vec"
	"dpbench/internal/workload"
	"dpbench/privacy"
)

// Histogram is a non-negative count vector over a 1D or 2D domain — the
// private input x every mechanism releases an estimate of. Construct with
// dpbench.NewHistogram or a Dataset's generator.
type Histogram = vec.Vector

// Workload is a set of axis-aligned range queries over a fixed domain.
// Construct with the dpbench package's workload constructors (Prefix,
// RandomRange, ...) or build one query-by-query with AddRange/AddRect.
type Workload = workload.Workload

// Mechanism is a differentially private data-release mechanism: it consumes
// a histogram x, a workload (used only by workload-aware mechanisms) and a
// privacy budget epsilon, and releases an estimated histogram from which any
// range query can be answered by summation.
type Mechanism = algo.Algorithm

// Plan is a prepared release plan bound to one (x, w, eps) cell. Execute
// runs one independent trial, drawing all noise through the supplied meter;
// it is safe for concurrent use, so one plan can serve many goroutines.
type Plan = algo.Plan

// ErrUnknownMechanism marks a registry lookup for an unregistered name,
// matched with errors.Is. The serving layer maps it to HTTP 404.
var ErrUnknownMechanism = algo.ErrUnknownAlgorithm

// Option configures a mechanism at construction time. Options return an
// error when they do not apply to the mechanism being built, so a
// misconfiguration fails loudly instead of silently running defaults.
type Option func(Mechanism) error

// Sampler selects the noise-sampler implementation a mechanism's trials draw
// from. SamplerLegacy (the default) is the reference exp/log sampler whose
// stream every golden output pins; SamplerFast is the table-accelerated
// family (batched inverse-CDF Laplace, Gumbel-max selection) with identical
// distributions on its own stream. See WithSampler.
type Sampler = noise.SamplerVersion

const (
	// SamplerLegacy is the default reference sampler.
	SamplerLegacy = noise.SamplerLegacy
	// SamplerFast is the table-accelerated sampler family.
	SamplerFast = noise.SamplerFast
)

// ParseSampler parses a sampler name ("legacy" or "fast") as accepted by the
// dpbench CLI's -sampler flag.
func ParseSampler(s string) (Sampler, error) { return noise.ParseSamplerVersion(s) }

// pendingSampler carries a WithSampler request from option application to
// the wrapping step at the end of New: options mutate the mechanism in
// place, but the sampler pin is a view around it, so New applies it last.
var pendingSampler sync.Map // Mechanism -> Sampler

// WithSampler pins the sampler family the mechanism's plans draw noise from.
// It applies to every mechanism; the default is SamplerLegacy, whose stream
// is bit-identical to prior releases.
func WithSampler(v Sampler) Option {
	return func(m Mechanism) error {
		if v != SamplerLegacy && v != SamplerFast {
			return fmt.Errorf("unknown sampler version %d", v)
		}
		pendingSampler.Store(m, v)
		return nil
	}
}

// New returns a fresh instance of the named mechanism in its default
// (paper) configuration, with any options applied. Unknown names fail with
// an error wrapping ErrUnknownMechanism; inapplicable options fail with an
// error naming the mechanism and the option.
func New(name string, opts ...Option) (Mechanism, error) {
	a, err := algo.New(name)
	if err != nil {
		return nil, err
	}
	for _, opt := range opts {
		if err := opt(a); err != nil {
			pendingSampler.Delete(a)
			return nil, fmt.Errorf("release: constructing %s: %w", name, err)
		}
	}
	if v, ok := pendingSampler.LoadAndDelete(a); ok {
		return algo.WithSamplerVersion(a, v.(Sampler)), nil
	}
	return a, nil
}

// underlying unwraps configuration views (currently only the sampler pin) so
// type-asserting options reach the concrete mechanism they configure.
func underlying(m Mechanism) Mechanism {
	for {
		u, ok := m.(interface{ Unwrap() Mechanism })
		if !ok {
			return m
		}
		m = u.Unwrap()
	}
}

// Names returns the sorted list of registered mechanism names.
func Names() []string { return algo.Names() }

// All returns fresh default instances of every registered mechanism that
// supports k-dimensional data.
func All(k int) []Mechanism { return algo.All(k) }

// WithSideInfoRepair applies the paper's Rside repair (Principle 7): instead
// of consuming the true dataset scale as free public side information, the
// mechanism spends the fraction rho of its budget on a private estimate.
// Fails for mechanisms that use no side information.
func WithSideInfoRepair(rho float64) Option {
	return func(m Mechanism) error {
		if rho <= 0 || rho >= 1 {
			return fmt.Errorf("side-info repair fraction must be in (0,1), got %v", rho)
		}
		s, ok := underlying(m).(algo.SideInfoUser)
		if !ok {
			return fmt.Errorf("%s consumes no side information; WithSideInfoRepair does not apply", m.Name())
		}
		s.SetScaleEstimator(rho)
		return nil
	}
}

// WithMWEMRounds fixes MWEM's round count T. Applies to MWEM variants only.
func WithMWEMRounds(t int) Option {
	return func(m Mechanism) error {
		mw, ok := underlying(m).(*algo.MWEM)
		if !ok {
			return fmt.Errorf("%s is not MWEM; WithMWEMRounds does not apply", m.Name())
		}
		if t <= 0 {
			return fmt.Errorf("MWEM round count must be positive, got %d", t)
		}
		mw.T = t
		mw.TFromSignal = nil
		return nil
	}
}

// WithMWEMProfile derives MWEM's round count from the signal strength
// eps*scale through a trained, data-independent profile (the MWEM* repair;
// train one with dpbench.TrainMWEM). Applies to MWEM variants only.
func WithMWEMProfile(profile func(signal float64) int) Option {
	return func(m Mechanism) error {
		mw, ok := underlying(m).(*algo.MWEM)
		if !ok {
			return fmt.Errorf("%s is not MWEM; WithMWEMProfile does not apply", m.Name())
		}
		if profile == nil {
			return fmt.Errorf("MWEM profile must be non-nil")
		}
		mw.T = 0
		mw.TFromSignal = profile
		return nil
	}
}

// WithMWEMUpdateSweeps sets the number of measurement-history replay sweeps
// MWEM applies per round. Applies to MWEM variants only.
func WithMWEMUpdateSweeps(k int) Option {
	return func(m Mechanism) error {
		mw, ok := underlying(m).(*algo.MWEM)
		if !ok {
			return fmt.Errorf("%s is not MWEM; WithMWEMUpdateSweeps does not apply", m.Name())
		}
		if k <= 0 {
			return fmt.Errorf("MWEM update sweeps must be positive, got %d", k)
		}
		mw.UpdateSweeps = k
		return nil
	}
}

// WithAHPParams fixes AHP's clustering parameters (rho, the budget fraction
// spent on the noisy histogram used for clustering, and eta, the
// zero-threshold). Applies to AHP variants only.
func WithAHPParams(rho, eta float64) Option {
	return func(m Mechanism) error {
		ah, ok := underlying(m).(*algo.AHP)
		if !ok {
			return fmt.Errorf("%s is not AHP; WithAHPParams does not apply", m.Name())
		}
		if rho <= 0 || rho >= 1 {
			return fmt.Errorf("AHP rho must be in (0,1), got %v", rho)
		}
		if eta < 0 {
			return fmt.Errorf("AHP eta must be non-negative, got %v", eta)
		}
		ah.Rho = rho
		ah.Eta = eta
		return nil
	}
}

// NewPlan prepares an executable release plan for the cell (x, w, eps):
// all deterministic structure building happens here, with no randomness and
// no privacy cost, so repeated trials pay only for noise and inference.
func NewPlan(m Mechanism, x *Histogram, w *Workload, eps float64) (Plan, error) {
	return m.Plan(x, w, eps)
}

// Run releases an estimate of x under eps-differential privacy on the given
// RNG stream. It is exactly NewPlan followed by one Plan.Execute.
func Run(m Mechanism, x *Histogram, w *Workload, eps float64, rng *rand.Rand) ([]float64, error) {
	return m.Run(x, w, eps, rng)
}

// RunAudited is Run through a ledger-backed meter: after the trial it
// verifies that the mechanism's recorded spends sum to exactly eps and match
// its declared composition plan, failing with an error wrapping
// privacy.ErrBudgetExhausted or privacy.ErrCompositionViolation otherwise.
// Output is bit-identical to Run on the same RNG stream.
func RunAudited(m Mechanism, x *Histogram, w *Workload, eps float64, rng *rand.Rand) ([]float64, error) {
	return algo.RunAudited(m, x, w, eps, rng)
}

// Composition kinds reported by Info.
const (
	// CompositionSequential marks mechanisms whose declared budget spends
	// all compose sequentially (they add up).
	CompositionSequential = "sequential"
	// CompositionParallel marks mechanisms whose declared spends all apply
	// to disjoint data partitions (they compose by maximum).
	CompositionParallel = "parallel"
	// CompositionMixed marks mechanisms that declare both kinds.
	CompositionMixed = "mixed"
	// CompositionUndeclared marks mechanisms without a declared plan.
	CompositionUndeclared = "undeclared"
)

// Info describes one registered mechanism for listings (dpbench -list, the
// serve layer's /v1/mechanisms endpoint).
type Info struct {
	// Name is the benchmark identifier, e.g. "DAWA" or "MWEM*".
	Name string `json:"name"`
	// Dims lists the supported dimensionalities (subset of {1, 2}).
	Dims []int `json:"dims"`
	// DataDependent reports whether the mechanism's error distribution
	// depends on the input data (Section 3.1 of the paper).
	DataDependent bool `json:"data_dependent"`
	// Composition summarizes the mechanism's declared budget-composition
	// plan: "sequential", "parallel", or "mixed".
	Composition string `json:"composition"`
}

// List describes every registered mechanism, sorted by name.
func List() []Info {
	descs := algo.Describe()
	out := make([]Info, len(descs))
	for i, d := range descs {
		out[i] = Info(d)
	}
	return out
}

// compile-time check that the privacy alias wiring stays sound: a Plan
// executes against exactly the meter type the privacy package hands out.
var _ = func(p Plan, m *privacy.Meter, out []float64) error { return p.Execute(m, out) }
